// Time-Modulated Array (TMA) for spatial-division multiplexing at the AP
// (paper §7b, Eqs. 1-4; He et al. [25]).
//
// Each element of an N-element array sits behind an RF switch driven by a
// periodic on/off sequence w_n(t) with period Tp. The combined output of
// a signal arriving from direction theta is copied onto harmonics of the
// switching rate, and with progressively delayed switch windows, each
// harmonic's array pattern is steered to a different direction — the TMA
// "hashes" arrival directions into frequency offsets, letting one RF
// chain separate simultaneous same-channel transmitters.
#pragma once

#include <complex>
#include <vector>

#include "mmx/dsp/types.hpp"

namespace mmx::antenna {

/// Rectangular on-window of one element, as fractions of the period Tp.
struct SwitchWindow {
  double on;   ///< turn-on time / Tp, in [0, 1)
  double tau;  ///< on-duration / Tp, in (0, 1]
};

struct TmaSpec {
  std::size_t num_elements = 8;
  double spacing_wavelengths = 0.5;
  double freq_hz = 24.125e9;          ///< carrier
  double switch_rate_hz = 50e6;       ///< 1/Tp: harmonic spacing
};

class TimeModulatedArray {
 public:
  /// Uniform progressive-delay design: element n switches on at
  /// n * delay_frac (mod 1) with duty cycle `tau`. This is the classic
  /// SDMA-TMA configuration: harmonic m is steered to
  /// sin(theta_m) = m * delay_frac * lambda / d.
  static TimeModulatedArray progressive(TmaSpec spec, double delay_frac, double tau = 0.5);

  /// Tapered progressive design (harmonic beamforming, Poli et al. — the
  /// paper's ref [34]): per-element duty cycles `taus` impose an
  /// amplitude taper sin(pi tau_n) on harmonic +/-1, suppressing its
  /// sidelobes below the uniform array's -13 dB. Each window is centred
  /// on the element's progressive delay so the steering phase is
  /// unchanged.
  static TimeModulatedArray tapered(TmaSpec spec, double delay_frac,
                                    const std::vector<double>& taus);

  TimeModulatedArray(TmaSpec spec, std::vector<SwitchWindow> windows);

  /// Fourier coefficient a_{mn} of element n's switching sequence at
  /// harmonic m (Eq. 3, evaluated analytically for rectangular windows).
  std::complex<double> coefficient(int harmonic, std::size_t element) const;

  /// Harmonic-m array response for a plane wave from azimuth theta
  /// (Eq. 4's inner sum): sum_n a_{mn} e^{j k n d sin theta}.
  std::complex<double> harmonic_pattern(int harmonic, double theta) const;

  /// Power |harmonic_pattern|^2 normalized by N^2 (1.0 = full coherent
  /// gain of the aperture).
  double harmonic_power(int harmonic, double theta) const;

  /// Direction the progressive design steers harmonic m toward; throws if
  /// it falls outside real angles.
  double steered_angle(int harmonic) const;

  /// Time-domain behaviour: for unit-amplitude tones arriving from
  /// `arrival_thetas` (all on the same RF channel), produce `n` combined
  /// output samples at `sample_rate_hz`. Used by tests to check that the
  /// analytic coefficients match a brute-force simulation, and by the
  /// SDM demux to generate realistic inputs.
  dsp::Cvec simulate(std::span<const double> arrival_thetas, double sample_rate_hz,
                     std::size_t n) const;

  /// Signal-to-interference ratio [dB] when K sources at
  /// `arrival_thetas` are demultiplexed by assigning source i to harmonic
  /// `harmonics[i]`: min over i of (wanted power / sum of other sources'
  /// leakage into i's harmonic).
  double demux_sir_db(std::span<const double> arrival_thetas,
                      std::span<const int> harmonics) const;

  const TmaSpec& spec() const { return spec_; }
  const std::vector<SwitchWindow>& windows() const { return windows_; }

 private:
  TmaSpec spec_;
  std::vector<SwitchWindow> windows_;
  double delay_frac_ = 0.0;  ///< set by `progressive`; 0 = unknown design
};

}  // namespace mmx::antenna
