#include "mmx/antenna/pattern_metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::antenna {

PatternPeak find_peak(const Pattern& p, double lo, double hi, int samples) {
  if (samples < 2) throw std::invalid_argument("find_peak: need >= 2 samples");
  if (lo >= hi) throw std::invalid_argument("find_peak: lo must be < hi");
  PatternPeak best{lo, p(lo)};
  for (int i = 1; i < samples; ++i) {
    const double t = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(samples - 1);
    const double a = p(t);
    if (a > best.amplitude) best = {t, a};
  }
  return best;
}

double half_power_beamwidth(const Pattern& p, double peak_angle, int samples) {
  const double peak = p(peak_angle);
  if (peak <= 0.0) throw std::invalid_argument("half_power_beamwidth: no power at peak");
  const double half = peak / std::sqrt(2.0);
  const double step = kTwoPi / static_cast<double>(samples);
  double upper = peak_angle;
  for (double t = peak_angle; t < peak_angle + kPi; t += step) {
    if (p(t) < half) break;
    upper = t;
  }
  double lower = peak_angle;
  for (double t = peak_angle; t > peak_angle - kPi; t -= step) {
    if (p(t) < half) break;
    lower = t;
  }
  return upper - lower;
}

double depth_below_peak_db(const Pattern& p, double angle) {
  const PatternPeak peak = find_peak(p, -kPi, kPi);
  const double at = p(angle);
  if (at <= 0.0) return 200.0;  // exact null, clamp
  return amp_to_db(peak.amplitude / at);
}

double pair_orthogonality_db(const Pattern& a, const Pattern& b) {
  const PatternPeak pa = find_peak(a, -kPi, kPi);
  const PatternPeak pb = find_peak(b, -kPi, kPi);
  const double a_at_b = a(pb.angle);
  const double b_at_a = b(pa.angle);
  const double iso_a = (a_at_b <= 0.0) ? 200.0 : amp_to_db(pa.amplitude / a_at_b);
  const double iso_b = (b_at_a <= 0.0) ? 200.0 : amp_to_db(pb.amplitude / b_at_a);
  return std::min(iso_a, iso_b);
}

double azimuth_directivity_db(const Pattern& p, int samples) {
  if (samples < 8) throw std::invalid_argument("azimuth_directivity_db: need >= 8 samples");
  double peak = 0.0;
  double mean_power = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double t = -kPi + kTwoPi * static_cast<double>(i) / static_cast<double>(samples);
    const double a = p(t);
    peak = std::max(peak, a * a);
    mean_power += a * a;
  }
  mean_power /= static_cast<double>(samples);
  if (mean_power <= 0.0) throw std::invalid_argument("azimuth_directivity_db: zero pattern");
  return lin_to_db(peak / mean_power);
}

double field_of_view(const Pattern& a, const Pattern& b, double drop_db, int samples) {
  if (drop_db <= 0.0) throw std::invalid_argument("field_of_view: drop must be > 0 dB");
  const PatternPeak pa = find_peak(a, -kPi, kPi);
  const PatternPeak pb = find_peak(b, -kPi, kPi);
  const double peak = std::max(pa.amplitude, pb.amplitude);
  const double floor = peak * db_to_amp(-drop_db);
  const double step = kTwoPi / static_cast<double>(samples);
  // Expand outward from boresight until coverage drops below the floor.
  double upper = 0.0;
  for (double t = 0.0; t <= kPi; t += step) {
    if (std::max(a(t), b(t)) < floor) break;
    upper = t;
  }
  double lower = 0.0;
  for (double t = 0.0; t >= -kPi; t -= step) {
    if (std::max(a(t), b(t)) < floor) break;
    lower = t;
  }
  return upper - lower;
}

}  // namespace mmx::antenna
