#include "mmx/antenna/mmx_beams.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::antenna {

MmxBeamPair::MmxBeamPair(BeamPairSpec spec) : spec_(spec) {
  if (spec_.spacing_wavelengths <= 0.0)
    throw std::invalid_argument("MmxBeamPair: spacing must be > 0 wavelengths");
  const double d = spec_.spacing_wavelengths * wavelength(spec_.freq_hz);
  auto patch = std::make_shared<Patch>(spec_.patch_gain_dbi);
  // Weights carry a 1/sqrt(2) amplitude so total radiated power matches a
  // single element fed with the same source power (the SPDT routes the
  // full carrier into one 2-element array at a time).
  const double a = 1.0 / std::sqrt(2.0);
  beam1_ = std::make_unique<LinearArray>(
      patch, d, std::vector<std::complex<double>>{{a, 0.0}, {a, 0.0}}, spec_.freq_hz);
  beam0_ = std::make_unique<LinearArray>(
      patch, d, std::vector<std::complex<double>>{{a, 0.0}, {-a, 0.0}}, spec_.freq_hz);
}

const LinearArray& MmxBeamPair::beam(int beam) const {
  if (beam == 0) return *beam0_;
  if (beam == 1) return *beam1_;
  throw std::invalid_argument("MmxBeamPair: beam must be 0 or 1");
}

std::complex<double> MmxBeamPair::field(int b, double theta) const {
  return beam(b).field(theta);
}

double MmxBeamPair::amplitude(int b, double theta) const { return beam(b).amplitude(theta); }

double MmxBeamPair::gain_dbi(int b, double theta) const { return beam(b).gain_dbi(theta); }

double MmxBeamPair::beam0_peak_angle() const {
  // sin(theta) = lambda / (2 d) gives the anti-phase array's first peak.
  const double s = 1.0 / (2.0 * spec_.spacing_wavelengths);
  if (s >= 1.0) throw std::logic_error("MmxBeamPair: spacing too small for a real peak");
  return std::asin(s);
}

}  // namespace mmx::antenna
