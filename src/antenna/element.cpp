#include "mmx/antenna/element.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::antenna {

double Element::gain_dbi(double theta) const {
  const double a = amplitude(theta);
  if (a <= 0.0) return -200.0;  // clamp true nulls for dB reporting
  return amp_to_db(a);
}

Patch::Patch(double peak_gain_dbi, double q, double back_lobe_db)
    : peak_gain_dbi_(peak_gain_dbi), q_(q) {
  if (q <= 0.0) throw std::invalid_argument("Patch: q must be > 0");
  if (back_lobe_db <= 0.0) throw std::invalid_argument("Patch: back lobe must be > 0 dB down");
  peak_amp_ = db_to_amp(peak_gain_dbi);
  back_floor_amp_ = peak_amp_ * db_to_amp(-back_lobe_db);
}

double Patch::amplitude(double theta) const {
  const double t = wrap_angle(theta);
  if (std::abs(t) >= kPi / 2.0) return back_floor_amp_;
  const double shape = std::pow(std::cos(t), q_);
  return std::max(peak_amp_ * shape, back_floor_amp_);
}

namespace {

/// Cosine exponent q such that cos^q(hpbw/2) = 1/sqrt(2) (half power).
double q_for_hpbw(double hpbw_deg) {
  const double half = deg_to_rad(hpbw_deg / 2.0);
  const double c = std::cos(half);
  if (c <= 0.0 || c >= 1.0) throw std::invalid_argument("hpbw out of range");
  return std::log(1.0 / std::sqrt(2.0)) / std::log(c);
}

}  // namespace

Dipole::Dipole(double peak_gain_dbi, double hpbw_deg)
    : peak_gain_dbi_(peak_gain_dbi), hpbw_deg_(hpbw_deg), q_(q_for_hpbw(hpbw_deg)) {
  peak_amp_ = db_to_amp(peak_gain_dbi);
}

double Dipole::amplitude(double theta) const {
  const double t = wrap_angle(theta);
  if (std::abs(t) >= kPi / 2.0) {
    // Printed dipole above a ground plane: weak back radiation, -20 dB.
    return peak_amp_ * db_to_amp(-20.0);
  }
  return peak_amp_ * std::pow(std::cos(t), q_);
}

}  // namespace mmx::antenna
