#include "mmx/antenna/array.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::antenna {

LinearArray::LinearArray(std::shared_ptr<const Element> element, double spacing_m,
                         std::vector<std::complex<double>> weights, double freq_hz)
    : element_(std::move(element)),
      spacing_m_(spacing_m),
      weights_(std::move(weights)),
      freq_hz_(freq_hz),
      k_(wavenumber(freq_hz)) {
  if (!element_) throw std::invalid_argument("LinearArray: null element");
  if (spacing_m <= 0.0) throw std::invalid_argument("LinearArray: spacing must be > 0");
  if (weights_.empty()) throw std::invalid_argument("LinearArray: need at least one element");
  if (freq_hz <= 0.0) throw std::invalid_argument("LinearArray: frequency must be > 0");
}

std::complex<double> LinearArray::array_factor(double theta) const {
  const double psi = k_ * spacing_m_ * std::sin(theta);
  std::complex<double> acc{0.0, 0.0};
  for (std::size_t n = 0; n < weights_.size(); ++n) {
    const double ph = psi * static_cast<double>(n);
    acc += weights_[n] * std::complex<double>{std::cos(ph), std::sin(ph)};
  }
  return acc;
}

std::complex<double> LinearArray::field(double theta) const {
  return element_->amplitude(theta) * array_factor(theta);
}

double LinearArray::amplitude(double theta) const { return std::abs(field(theta)); }

double LinearArray::gain_dbi(double theta) const {
  const double a = amplitude(theta);
  if (a <= 1e-12) return -200.0;
  return amp_to_db(a);
}

std::vector<std::complex<double>> steering_weights(std::size_t n, double spacing_m,
                                                   double freq_hz, double theta0) {
  if (n == 0) throw std::invalid_argument("steering_weights: n must be > 0");
  const double k = wavenumber(freq_hz);
  std::vector<std::complex<double>> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = -k * spacing_m * std::sin(theta0) * static_cast<double>(i);
    w[i] = std::complex<double>{std::cos(ph), std::sin(ph)};
  }
  return w;
}

}  // namespace mmx::antenna
