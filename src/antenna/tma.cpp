#include "mmx/antenna/tma.hpp"
#include <algorithm>
#include <limits>

#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::antenna {
namespace {

void validate_spec(const TmaSpec& spec) {
  if (spec.num_elements == 0) throw std::invalid_argument("Tma: need at least one element");
  if (spec.spacing_wavelengths <= 0.0) throw std::invalid_argument("Tma: spacing must be > 0");
  if (spec.freq_hz <= 0.0) throw std::invalid_argument("Tma: frequency must be > 0");
  if (spec.switch_rate_hz <= 0.0) throw std::invalid_argument("Tma: switch rate must be > 0");
}

}  // namespace

TimeModulatedArray::TimeModulatedArray(TmaSpec spec, std::vector<SwitchWindow> windows)
    : spec_(spec), windows_(std::move(windows)) {
  validate_spec(spec_);
  if (windows_.size() != spec_.num_elements)
    throw std::invalid_argument("Tma: one switch window per element required");
  for (const SwitchWindow& w : windows_) {
    if (w.on < 0.0 || w.on >= 1.0) throw std::invalid_argument("Tma: window.on must be in [0,1)");
    if (w.tau <= 0.0 || w.tau > 1.0) throw std::invalid_argument("Tma: window.tau must be in (0,1]");
  }
}

TimeModulatedArray TimeModulatedArray::progressive(TmaSpec spec, double delay_frac, double tau) {
  validate_spec(spec);
  if (delay_frac < 0.0 || delay_frac >= 1.0)
    throw std::invalid_argument("Tma: delay_frac must be in [0,1)");
  std::vector<SwitchWindow> windows(spec.num_elements);
  for (std::size_t n = 0; n < spec.num_elements; ++n) {
    windows[n] = {std::fmod(static_cast<double>(n) * delay_frac, 1.0), tau};
  }
  TimeModulatedArray tma(spec, std::move(windows));
  tma.delay_frac_ = delay_frac;
  return tma;
}

TimeModulatedArray TimeModulatedArray::tapered(TmaSpec spec, double delay_frac,
                                               const std::vector<double>& taus) {
  validate_spec(spec);
  if (delay_frac < 0.0 || delay_frac >= 1.0)
    throw std::invalid_argument("Tma: delay_frac must be in [0,1)");
  if (taus.size() != spec.num_elements)
    throw std::invalid_argument("Tma: one duty cycle per element required");
  std::vector<SwitchWindow> windows(spec.num_elements);
  for (std::size_t n = 0; n < spec.num_elements; ++n) {
    if (taus[n] <= 0.0 || taus[n] > 1.0)
      throw std::invalid_argument("Tma: duty cycles must be in (0,1]");
    // Centre each window on the progressive delay so the harmonic-m
    // phase progression (and hence the steering) matches the uniform
    // design.
    const double centre = static_cast<double>(n) * delay_frac;
    windows[n] = {std::fmod(centre - taus[n] / 2.0 + 2.0, 1.0), taus[n]};
  }
  TimeModulatedArray tma(spec, std::move(windows));
  tma.delay_frac_ = delay_frac;
  return tma;
}

std::complex<double> TimeModulatedArray::coefficient(int m, std::size_t element) const {
  if (element >= windows_.size()) throw std::out_of_range("Tma: element index");
  const SwitchWindow& w = windows_[element];
  if (m == 0) return {w.tau, 0.0};
  // a_mn = integral over the on-window of e^{-j 2 pi m u} du
  //      = (e^{-j 2 pi m on} - e^{-j 2 pi m (on+tau)}) / (j 2 pi m).
  const double a1 = -kTwoPi * static_cast<double>(m) * w.on;
  const double a2 = -kTwoPi * static_cast<double>(m) * (w.on + w.tau);
  const std::complex<double> num =
      std::complex<double>{std::cos(a1), std::sin(a1)} -
      std::complex<double>{std::cos(a2), std::sin(a2)};
  return num / std::complex<double>{0.0, kTwoPi * static_cast<double>(m)};
}

std::complex<double> TimeModulatedArray::harmonic_pattern(int m, double theta) const {
  const double psi = kTwoPi * spec_.spacing_wavelengths * std::sin(theta);
  std::complex<double> acc{0.0, 0.0};
  for (std::size_t n = 0; n < windows_.size(); ++n) {
    const double ph = psi * static_cast<double>(n);
    acc += coefficient(m, n) * std::complex<double>{std::cos(ph), std::sin(ph)};
  }
  return acc;
}

double TimeModulatedArray::harmonic_power(int m, double theta) const {
  const double nn = static_cast<double>(windows_.size());
  return std::norm(harmonic_pattern(m, theta)) / (nn * nn);
}

double TimeModulatedArray::steered_angle(int m) const {
  if (delay_frac_ == 0.0 && m != 0)
    throw std::logic_error("Tma: steered_angle requires a progressive design");
  const double s = static_cast<double>(m) * delay_frac_ / spec_.spacing_wavelengths;
  if (std::abs(s) > 1.0) throw std::out_of_range("Tma: harmonic steers outside real angles");
  return std::asin(s);
}

dsp::Cvec TimeModulatedArray::simulate(std::span<const double> arrival_thetas,
                                       double sample_rate_hz, std::size_t n) const {
  if (sample_rate_hz <= 0.0) throw std::invalid_argument("Tma: sample rate must be > 0");
  dsp::Cvec out(n, dsp::Complex{});
  const double psi_base = kTwoPi * spec_.spacing_wavelengths;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / sample_rate_hz;
    const double frac = std::fmod(t * spec_.switch_rate_hz, 1.0);
    for (const double theta : arrival_thetas) {
      const double psi = psi_base * std::sin(theta);
      for (std::size_t e = 0; e < windows_.size(); ++e) {
        const SwitchWindow& w = windows_[e];
        // On-window test with wraparound.
        const double end = w.on + w.tau;
        const bool on = (end <= 1.0) ? (frac >= w.on && frac < end)
                                     : (frac >= w.on || frac < end - 1.0);
        if (!on) continue;
        const double ph = psi * static_cast<double>(e);
        out[i] += dsp::Complex{std::cos(ph), std::sin(ph)};
      }
    }
  }
  return out;
}

double TimeModulatedArray::demux_sir_db(std::span<const double> arrival_thetas,
                                        std::span<const int> harmonics) const {
  if (arrival_thetas.size() != harmonics.size() || arrival_thetas.empty())
    throw std::invalid_argument("Tma: one harmonic per source required");
  double worst = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < arrival_thetas.size(); ++i) {
    const double wanted = harmonic_power(harmonics[i], arrival_thetas[i]);
    double interference = 0.0;
    for (std::size_t j = 0; j < arrival_thetas.size(); ++j) {
      if (j == i) continue;
      interference += harmonic_power(harmonics[i], arrival_thetas[j]);
    }
    if (wanted <= 0.0) return -200.0;
    const double sir =
        (interference <= 0.0) ? 200.0 : lin_to_db(wanted / interference);
    worst = std::min(worst, sir);
  }
  return worst;
}

}  // namespace mmx::antenna
