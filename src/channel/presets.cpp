#include "mmx/channel/presets.hpp"

#include <algorithm>
#include <cmath>

#include "mmx/channel/blockage.hpp"
#include "mmx/common/units.hpp"

namespace mmx::channel {

Room furnished_lab() {
  Room room(4.0, 6.0);
  // Wall-lining closets/cabinets (strong reflectors below LoS height).
  room.add_reflector({{0.05, 0.3}, {0.05, 5.5}}, metal());
  room.add_reflector({{3.95, 0.3}, {3.95, 5.5}}, metal());
  // Desks with computer cases mid-room.
  room.add_reflector({{0.6, 1.2}, {1.8, 1.2}}, metal());
  room.add_reflector({{2.2, 3.4}, {3.4, 3.4}}, metal());
  // Window on the far wall, whiteboard near the AP wall.
  room.add_reflector({{0.8, 0.06}, {3.2, 0.06}}, glass());
  room.add_reflector({{1.0, 5.94}, {3.0, 5.94}}, glass());
  return room;
}

Pose furnished_lab_ap() { return {{2.0, 5.9}, -kPi / 2.0}; }

Room range_hall() { return Room(22.0, 8.0); }

Pose range_hall_ap() { return {{21.0, 4.0}, kPi}; }

std::size_t park_person(Room& room, Vec2 node, Vec2 ap) {
  const double d = distance(node, ap);
  const double frac = std::min(0.5, 1.0 / d);
  return park_blocker_on_los(room, node, ap, frac);
}

}  // namespace mmx::channel
