#include "mmx/channel/ray_tracer.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/channel/propagation.hpp"
#include "mmx/common/units.hpp"

namespace mmx::channel {

RayTracer::RayTracer(const Room& room) : room_(&room) {}

double RayTracer::blocker_loss_db(Vec2 a, Vec2 b, int& crossings, double loss_scale) const {
  double loss = 0.0;
  for (const Blocker& blk : room_->blockers()) {
    if (segment_hits_disc(a, b, blk.center, blk.radius)) {
      loss += blk.loss_db * loss_scale;
      ++crossings;
    }
  }
  return loss;
}

double RayTracer::transmission_loss_db(Vec2 a, Vec2 b, WallSkip skip) const {
  double loss = 0.0;
  const auto& walls = room_->walls();
  for (std::size_t w = 0; w < walls.size(); ++w) {
    if (!walls[w].blocks_transmission) continue;
    if (skip.contains(static_cast<int>(w))) continue;
    if (walls[w].segment.intersect(a, b)) loss += walls[w].material.transmission_loss_db;
  }
  return loss;
}

// Reflected paths leave/arrive with elevation spread (floor, ceiling and
// furniture bounces in 3-D), so a standing person intercepts only part of
// their Fresnel zone; the 2-D tracer models that as half the dB loss.
// LoS paths take the full body loss.
constexpr double kReflectedBlockageFraction = 0.5;

std::vector<Path> RayTracer::trace(Vec2 tx, Vec2 rx, double max_excess_loss_db,
                                   int max_bounces, bool apply_blockers) const {
  // Blocker-free traces feed cache-coherence decisions: see header.
  const auto blockers = [&](Vec2 a, Vec2 b, int& crossings, double scale) {
    return apply_blockers ? blocker_loss_db(a, b, crossings, scale) : 0.0;
  };
  if (max_bounces < 1 || max_bounces > 2)
    throw std::invalid_argument("RayTracer: max_bounces must be 1 or 2");
  if (tx == rx) throw std::invalid_argument("RayTracer: tx and rx coincide");
  std::vector<Path> paths;

  // --- Line of sight ---------------------------------------------------
  {
    Path p;
    p.kind = PathKind::kLineOfSight;
    p.length_m = distance(tx, rx);
    p.departure_rad = (rx - tx).angle();
    p.arrival_rad = (tx - rx).angle();
    int crossings = 0;
    p.excess_loss_db = blockers(tx, rx, crossings, 1.0);
    p.excess_loss_db += transmission_loss_db(tx, rx, WallSkip{});
    p.blocker_crossings = crossings;
    if (p.excess_loss_db <= max_excess_loss_db) paths.push_back(p);
  }

  // --- Single-bounce reflections (image method) ------------------------
  const auto& walls = room_->walls();
  for (std::size_t w = 0; w < walls.size(); ++w) {
    const Wall& wall = walls[w];
    const Vec2 image = wall.segment.mirror(rx);
    // The reflection point is where tx->image crosses the wall segment.
    const auto hit = wall.segment.intersect(tx, image);
    if (!hit) continue;
    const Vec2 via = *hit;
    // Degenerate geometry: endpoints on the wall itself.
    const double leg1 = distance(tx, via);
    const double leg2 = distance(via, rx);
    if (leg1 < 1e-6 || leg2 < 1e-6) continue;

    Path p;
    p.kind = PathKind::kReflected;
    p.length_m = leg1 + leg2;
    p.departure_rad = (via - tx).angle();
    p.arrival_rad = (via - rx).angle();
    p.wall_index = static_cast<int>(w);
    p.via = via;
    int crossings = 0;
    double loss = wall.material.reflection_loss_db;
    loss += blockers(tx, via, crossings, kReflectedBlockageFraction);
    loss += blockers(via, rx, crossings, kReflectedBlockageFraction);
    const int wall_id = static_cast<int>(w);
    loss += transmission_loss_db(tx, via, WallSkip{wall_id});
    loss += transmission_loss_db(via, rx, WallSkip{wall_id});
    p.excess_loss_db = loss;
    p.blocker_crossings = crossings;
    if (p.excess_loss_db <= max_excess_loss_db) paths.push_back(p);
  }

  // --- Double bounces (image of image) ----------------------------------
  if (max_bounces >= 2) {
    for (std::size_t wi = 0; wi < walls.size(); ++wi) {
      for (std::size_t wj = 0; wj < walls.size(); ++wj) {
        if (wi == wj) continue;
        const Wall& first = walls[wi];
        const Wall& second = walls[wj];
        // rx mirrored over the second wall, then over the first: aiming
        // at the double image from tx crosses wall wi at the first
        // bounce point.
        const Vec2 image_j = second.segment.mirror(rx);
        const Vec2 image_ji = first.segment.mirror(image_j);
        const auto hit1 = first.segment.intersect(tx, image_ji);
        if (!hit1) continue;
        const Vec2 p1 = *hit1;
        const auto hit2 = second.segment.intersect(p1, image_j);
        if (!hit2) continue;
        const Vec2 p2 = *hit2;
        const double leg1 = distance(tx, p1);
        const double leg2 = distance(p1, p2);
        const double leg3 = distance(p2, rx);
        if (leg1 < 1e-6 || leg2 < 1e-6 || leg3 < 1e-6) continue;

        Path p;
        p.kind = PathKind::kDoubleReflected;
        p.length_m = leg1 + leg2 + leg3;
        p.departure_rad = (p1 - tx).angle();
        p.arrival_rad = (p2 - rx).angle();
        p.wall_index = static_cast<int>(wi);
        p.wall_index2 = static_cast<int>(wj);
        p.via = p1;
        p.via2 = p2;
        int crossings = 0;
        double loss = first.material.reflection_loss_db + second.material.reflection_loss_db;
        loss += blockers(tx, p1, crossings, kReflectedBlockageFraction);
        loss += blockers(p1, p2, crossings, kReflectedBlockageFraction);
        loss += blockers(p2, rx, crossings, kReflectedBlockageFraction);
        const int wid = static_cast<int>(wi);
        const int wjd = static_cast<int>(wj);
        loss += transmission_loss_db(tx, p1, WallSkip{wid});
        loss += transmission_loss_db(p1, p2, WallSkip{wid, wjd});
        loss += transmission_loss_db(p2, rx, WallSkip{wjd});
        p.excess_loss_db = loss;
        p.blocker_crossings = crossings;
        if (p.excess_loss_db <= max_excess_loss_db) paths.push_back(p);
      }
    }
  }
  return paths;
}

std::complex<double> RayTracer::path_amplitude(const Path& path, double freq_hz) {
  return path_gain(path.length_m, freq_hz, path.excess_loss_db);
}

double RayTracer::rms_delay_spread_s(std::span<const Path> paths, double freq_hz) {
  if (paths.empty()) throw std::invalid_argument("rms_delay_spread_s: no paths");
  double p_sum = 0.0;
  double t_mean = 0.0;
  for (const Path& p : paths) {
    const double w = std::norm(path_amplitude(p, freq_hz));
    p_sum += w;
    t_mean += w * (p.length_m / kSpeedOfLight);
  }
  if (p_sum <= 0.0) return 0.0;
  t_mean /= p_sum;
  double var = 0.0;
  for (const Path& p : paths) {
    const double w = std::norm(path_amplitude(p, freq_hz));
    const double dt = p.length_m / kSpeedOfLight - t_mean;
    var += w * dt * dt;
  }
  return std::sqrt(var / p_sum);
}

}  // namespace mmx::channel
