#include "mmx/channel/beam_channel.hpp"

#include <cmath>

#include "mmx/common/units.hpp"

namespace mmx::channel {

double BeamGains::contrast_db() const {
  const double a0 = std::abs(h0);
  const double a1 = std::abs(h1);
  if (a0 <= 0.0 || a1 <= 0.0) return 200.0;
  return std::abs(amp_to_db(a1 / a0));
}

BeamGains beam_gains_from_paths(std::span<const Path> paths, const Pose& node,
                                const antenna::MmxBeamPair& beams, const Pose& ap,
                                const antenna::Element& ap_antenna, double freq_hz) {
  BeamGains g{};
  for (const Path& p : paths) {
    // Angles in each device's own frame.
    const double dep = wrap_angle(p.departure_rad - node.orientation_rad);
    const double arr = wrap_angle(p.arrival_rad - ap.orientation_rad);
    const double rx_amp = ap_antenna.amplitude(arr);
    const std::complex<double> a = RayTracer::path_amplitude(p, freq_hz) * rx_amp;
    g.h0 += beams.field(0, dep) * a;
    g.h1 += beams.field(1, dep) * a;
    ++g.paths_used;
  }
  return g;
}

BeamGains compute_beam_gains(const RayTracer& tracer, const Pose& node,
                             const antenna::MmxBeamPair& beams, const Pose& ap,
                             const antenna::Element& ap_antenna, double freq_hz) {
  const auto paths = tracer.trace(node.position, ap.position);
  return beam_gains_from_paths(paths, node, beams, ap, ap_antenna, freq_hz);
}

BeamGains compute_beam_gains_avg(const RayTracer& tracer, const Pose& node,
                                 const antenna::MmxBeamPair& beams, const Pose& ap,
                                 const antenna::Element& ap_antenna, double freq_hz) {
  double p0 = 0.0;
  double p1 = 0.0;
  int used = 0;
  for (const Path& p : tracer.trace(node.position, ap.position)) {
    const double dep = wrap_angle(p.departure_rad - node.orientation_rad);
    const double arr = wrap_angle(p.arrival_rad - ap.orientation_rad);
    const double rx_amp = ap_antenna.amplitude(arr);
    const double a = std::abs(RayTracer::path_amplitude(p, freq_hz)) * rx_amp;
    p0 += std::norm(beams.field(0, dep)) * a * a;
    p1 += std::norm(beams.field(1, dep)) * a * a;
    ++used;
  }
  BeamGains g{};
  g.h0 = std::sqrt(p0);
  g.h1 = std::sqrt(p1);
  g.paths_used = used;
  return g;
}

std::complex<double> compute_pattern_gain(const RayTracer& tracer, const Pose& tx,
                                          const antenna::LinearArray& tx_array, const Pose& rx,
                                          const antenna::Element& rx_antenna, double freq_hz) {
  std::complex<double> h{0.0, 0.0};
  for (const Path& p : tracer.trace(tx.position, rx.position)) {
    const double dep = wrap_angle(p.departure_rad - tx.orientation_rad);
    const double arr = wrap_angle(p.arrival_rad - rx.orientation_rad);
    h += tx_array.field(dep) * rx_antenna.amplitude(arr) * RayTracer::path_amplitude(p, freq_hz);
  }
  return h;
}

}  // namespace mmx::channel
