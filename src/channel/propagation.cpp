#include "mmx/channel/propagation.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::channel {

double free_space_loss_db(double distance_m, double freq_hz) {
  return friis_path_loss_db(distance_m, freq_hz);
}

double atmospheric_loss_db(double distance_m, double freq_hz) {
  if (distance_m < 0.0) throw std::invalid_argument("atmospheric_loss_db: negative distance");
  // Crude specific-attenuation table (ITU-R P.676 shape): the 22.2 GHz
  // water-vapour line gives ~0.2 dB/km near 24 GHz; 60 GHz oxygen peak
  // ~15 dB/km.
  double db_per_km = 0.1;
  if (freq_hz > 20e9 && freq_hz < 30e9) db_per_km = 0.2;
  if (freq_hz >= 55e9 && freq_hz <= 65e9) db_per_km = 15.0;
  return db_per_km * distance_m / 1000.0;
}

double path_loss_db(double distance_m, double freq_hz, double extra_db) {
  if (extra_db < 0.0) throw std::invalid_argument("path_loss_db: extra loss must be >= 0");
  return free_space_loss_db(distance_m, freq_hz) + atmospheric_loss_db(distance_m, freq_hz) +
         extra_db;
}

std::complex<double> path_gain(double distance_m, double freq_hz, double extra_db) {
  const double amp = db_to_amp(-path_loss_db(distance_m, freq_hz, extra_db));
  const double phase = -wavenumber(freq_hz) * distance_m;
  return amp * std::complex<double>{std::cos(phase), std::sin(phase)};
}

}  // namespace mmx::channel
