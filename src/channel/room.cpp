#include "mmx/channel/room.hpp"

#include <stdexcept>

namespace mmx::channel {

Material drywall() { return {"drywall", 12.0, 7.0}; }
Material concrete() { return {"concrete", 9.0, 30.0}; }
Material metal() { return {"metal", 2.0, 60.0}; }
Material glass() { return {"glass", 8.0, 4.0}; }
Material wood_furniture() { return {"wood", 14.0, 10.0}; }

// A human torso at 24 GHz: the paper's loss ordering (§6.1) has a blocked
// LoS 10-15 dB below NLoS, and NLoS 10-20 dB below LoS, putting body
// blockage at ~25-35 dB below LoS — consistent with measured mmWave body
// losses of 20-40 dB.
Blocker human_blocker(Vec2 center) { return {center, 0.25, 28.0}; }

Room::Room(double width_m, double height_m, Material wall_material)
    : width_(width_m), height_(height_m) {
  if (width_m <= 0.0 || height_m <= 0.0)
    throw std::invalid_argument("Room: dimensions must be > 0");
  const Vec2 a{0.0, 0.0};
  const Vec2 b{width_m, 0.0};
  const Vec2 c{width_m, height_m};
  const Vec2 d{0.0, height_m};
  walls_.push_back({{a, b}, wall_material});
  walls_.push_back({{b, c}, wall_material});
  walls_.push_back({{c, d}, wall_material});
  walls_.push_back({{d, a}, wall_material});
  for (Wall& w : walls_) w.segment.precompute();
}

void Room::add_reflector(Segment segment, Material material) {
  if (segment.length() <= 0.0) throw std::invalid_argument("Room: zero-length reflector");
  segment.precompute();
  walls_.push_back({segment, std::move(material), /*blocks_transmission=*/false});
  ++epoch_;
}

void Room::add_partition(Segment segment, Material material) {
  if (segment.length() <= 0.0) throw std::invalid_argument("Room: zero-length partition");
  segment.precompute();
  walls_.push_back({segment, std::move(material), /*blocks_transmission=*/true});
  ++epoch_;
}

std::size_t Room::add_blocker(Blocker blocker) {
  if (blocker.radius <= 0.0) throw std::invalid_argument("Room: blocker radius must be > 0");
  if (blocker.loss_db < 0.0) throw std::invalid_argument("Room: blocker loss must be >= 0");
  blockers_.push_back(blocker);
  ++epoch_;
  return blockers_.size() - 1;
}

void Room::move_blocker(std::size_t index, Vec2 new_center) {
  if (index >= blockers_.size()) throw std::out_of_range("Room: blocker index");
  if (blockers_[index].center == new_center) return;  // no-op moves keep caches warm
  blockers_[index].center = new_center;
  ++epoch_;
}

void Room::clear_blockers() {
  if (blockers_.empty()) return;
  blockers_.clear();
  ++epoch_;
}

bool Room::contains(Vec2 p) const {
  return p.x >= 0.0 && p.x <= width_ && p.y >= 0.0 && p.y <= height_;
}

}  // namespace mmx::channel
