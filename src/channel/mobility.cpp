#include "mmx/channel/mobility.hpp"

#include <cmath>
#include <stdexcept>

namespace mmx::channel {

RandomWaypoint::RandomWaypoint(Vec2 start, double area_w, double area_h, double speed_mps,
                               Rng& rng, double margin)
    : pos_(start), area_w_(area_w), area_h_(area_h), speed_(speed_mps), margin_(margin) {
  if (speed_mps <= 0.0) throw std::invalid_argument("RandomWaypoint: speed must be > 0");
  if (area_w <= 2.0 * margin || area_h <= 2.0 * margin)
    throw std::invalid_argument("RandomWaypoint: area too small for margin");
  target_ = pick_target(rng);
}

Vec2 RandomWaypoint::pick_target(Rng& rng) const {
  return {rng.uniform(margin_, area_w_ - margin_), rng.uniform(margin_, area_h_ - margin_)};
}

void RandomWaypoint::update(double dt, Rng& rng) {
  if (dt < 0.0) throw std::invalid_argument("RandomWaypoint: negative dt");
  double remaining = speed_ * dt;
  while (remaining > 0.0) {
    const double to_target = distance(pos_, target_);
    if (to_target <= remaining) {
      pos_ = target_;
      remaining -= to_target;
      target_ = pick_target(rng);
      if (to_target == 0.0) break;  // degenerate: target == pos
    } else {
      pos_ = pos_ + (target_ - pos_).normalized() * remaining;
      remaining = 0.0;
    }
  }
}

Pacer::Pacer(Vec2 a, Vec2 b, double speed_mps) : a_(a), b_(b), pos_(a), speed_(speed_mps) {
  if (speed_mps <= 0.0) throw std::invalid_argument("Pacer: speed must be > 0");
  if (a == b) throw std::invalid_argument("Pacer: endpoints must differ");
}

void Pacer::update(double dt) {
  if (dt < 0.0) throw std::invalid_argument("Pacer: negative dt");
  double remaining = speed_ * dt;
  while (remaining > 0.0) {
    const Vec2 goal = (dir_ > 0) ? b_ : a_;
    const double to_goal = distance(pos_, goal);
    if (to_goal <= remaining) {
      pos_ = goal;
      remaining -= to_goal;
      dir_ = -dir_;
    } else {
      pos_ = pos_ + (goal - pos_).normalized() * remaining;
      remaining = 0.0;
    }
  }
}

}  // namespace mmx::channel
