// Dynamic blockage scenarios.
//
// The paper's SNR experiments (§9.2) run with "people walking around" and
// one person parked on the LoS path for the whole experiment. These
// helpers bind mobility models to the Room's blocker list.
#pragma once

#include <vector>

#include "mmx/channel/mobility.hpp"
#include "mmx/channel/room.hpp"

namespace mmx::channel {

/// A crowd of random-waypoint walkers registered as blockers in a room.
class WalkingCrowd {
 public:
  /// Spawns `count` human blockers at uniform positions.
  WalkingCrowd(Room& room, std::size_t count, double speed_mps, Rng& rng);

  /// Advance all walkers and update their blocker discs in the room.
  void update(double dt, Rng& rng);

  std::size_t size() const { return walkers_.size(); }

 private:
  Room* room_;  // non-owning
  std::vector<RandomWaypoint> walkers_;
  std::vector<std::size_t> blocker_ids_;
};

/// Park a human blocker on the straight line between two points —
/// the paper's "one person was blocking the line-of-sight path between
/// the node and the AP for the entire duration of the experiment".
/// `frac` in (0,1) picks where along the segment. Returns blocker index.
std::size_t park_blocker_on_los(Room& room, Vec2 a, Vec2 b, double frac = 0.5);

}  // namespace mmx::channel
