// Mobility models for blockers and nodes.
#pragma once

#include "mmx/common/geometry.hpp"
#include "mmx/common/rng.hpp"

namespace mmx::channel {

/// Classic random-waypoint walker inside a rectangular area: pick a
/// uniform target, walk to it at constant speed, repeat.
class RandomWaypoint {
 public:
  /// Area is [margin, w-margin] x [margin, h-margin].
  RandomWaypoint(Vec2 start, double area_w, double area_h, double speed_mps, Rng& rng,
                 double margin = 0.3);

  /// Advance by dt seconds.
  void update(double dt, Rng& rng);

  Vec2 position() const { return pos_; }
  Vec2 target() const { return target_; }
  double speed() const { return speed_; }

 private:
  Vec2 pick_target(Rng& rng) const;

  Vec2 pos_;
  Vec2 target_;
  double area_w_;
  double area_h_;
  double speed_;
  double margin_;
};

/// Back-and-forth pacer between two points (a person pacing across the
/// LoS, a sliding door...).
class Pacer {
 public:
  Pacer(Vec2 a, Vec2 b, double speed_mps);

  void update(double dt);

  Vec2 position() const { return pos_; }

 private:
  Vec2 a_;
  Vec2 b_;
  Vec2 pos_;
  double speed_;
  int dir_ = +1;  // +1: toward b, -1: toward a
};

}  // namespace mmx::channel
