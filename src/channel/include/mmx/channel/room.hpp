// Room geometry for the 2-D mmWave ray tracer.
//
// The paper's experiments run in a 6 m x 4 m lab with "standard furniture
// such as desks, chairs, computers and closets" (§9) — i.e. plenty of
// reflectors — and people acting as blockers. A Room is a rectangle of
// walls (each with a reflection loss), optional extra reflector segments
// (furniture, whiteboards), and cylindrical blockers (people).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mmx/common/geometry.hpp"

namespace mmx::channel {

struct Material {
  std::string name;
  /// Power lost on reflection [dB]. The paper's operating premise (§6.1):
  /// NLoS paths run 10-20 dB below LoS; the reflection loss is the main
  /// contributor on top of the longer path.
  double reflection_loss_db;
  /// Power lost passing THROUGH the material [dB] — only applied by
  /// partitions (see Room::add_partition); furniture reflectors sit below
  /// the antenna plane and do not shadow.
  double transmission_loss_db = 0.0;
};

/// Common indoor materials at 24 GHz.
Material drywall();       // ~12 dB reflection loss
Material concrete();      // ~9 dB
Material metal();         // ~2 dB (strong reflector)
Material glass();         // ~8 dB
Material wood_furniture(); // ~14 dB

struct Wall {
  Segment segment;
  Material material;
  /// True for full-height partitions that attenuate rays crossing them;
  /// false for furniture (reflects, but the LoS passes over it).
  bool blocks_transmission = false;
};

/// A cylindrical obstruction (a person, a pillar) that attenuates any ray
/// crossing it. Paper §6.1: a blocked path runs 10-15 dB below NLoS.
struct Blocker {
  Vec2 center;
  double radius;
  double loss_db;
};

/// A standing/walking person: ~0.25 m radius, ~15 dB of mmWave loss.
Blocker human_blocker(Vec2 center);

class Room {
 public:
  /// Axis-aligned rectangular room [0,width] x [0,height] with all four
  /// walls of `wall_material`.
  Room(double width_m, double height_m, Material wall_material = drywall());

  /// Add an interior reflector (furniture, metal cabinet...). Reflects
  /// but does not shadow (below the antenna plane).
  void add_reflector(Segment segment, Material material);

  /// Add a full-height interior partition: reflects AND attenuates every
  /// ray crossing it by the material's transmission loss (multi-room
  /// deployments, §4's smart-home hub scenario).
  void add_partition(Segment segment, Material material);

  /// Add a blocker; returns its index for later moves/removal.
  std::size_t add_blocker(Blocker blocker);
  void move_blocker(std::size_t index, Vec2 new_center);
  void clear_blockers();

  bool contains(Vec2 p) const;

  /// Geometry generation counter: bumped by every mutation (reflector /
  /// partition / blocker add, blocker move, blocker clear). Caches keyed
  /// on the epoch (sim::LinkCache) stay exactly coherent: an unchanged
  /// epoch guarantees every previously computed ray trace is still valid.
  std::uint64_t epoch() const { return epoch_; }

  double width() const { return width_; }
  double height() const { return height_; }
  const std::vector<Wall>& walls() const { return walls_; }
  const std::vector<Blocker>& blockers() const { return blockers_; }

 private:
  double width_;
  double height_;
  std::vector<Wall> walls_;
  std::vector<Blocker> blockers_;
  std::uint64_t epoch_ = 0;
};

}  // namespace mmx::channel
