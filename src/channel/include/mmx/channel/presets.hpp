// Canonical experiment environments, shared by benches, tests and
// examples so every consumer measures the same world.
#pragma once

#include "mmx/channel/beam_channel.hpp"
#include "mmx/channel/room.hpp"

namespace mmx::channel {

/// The paper's furnished 4 x 6 m lab (§9): metal cabinets/closets lining
/// the side walls, metal desk edges mid-room, glass window and
/// whiteboard on the short walls. AP at the middle of the y=6 wall.
Room furnished_lab();

/// AP placement matching `furnished_lab`.
Pose furnished_lab_ap();

/// The long 22 x 8 m hall used for the range sweeps (Fig. 12); AP at
/// (21, 4) facing down the hall.
Room range_hall();
Pose range_hall_ap();

/// Park the blocking person on the node->AP line, centred but never
/// closer than ~1 m to the AP (§9.2's experiment). Returns blocker index.
std::size_t park_person(Room& room, Vec2 node, Vec2 ap);

}  // namespace mmx::channel
