// Image-method ray tracer: LoS + first-order specular reflections.
//
// Past mmWave measurement studies show "typically there are a few paths"
// between two nodes (paper §2, citing BeamSpy) — LoS plus a handful of
// single-bounce reflections dominate. The tracer enumerates exactly
// those, with per-path departure/arrival angles so directional antenna
// patterns can be applied at both ends, and blocker crossings so human
// blockage shows up as the 10-15 dB penalty the paper relies on.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "mmx/channel/room.hpp"

namespace mmx::channel {

enum class PathKind { kLineOfSight, kReflected, kDoubleReflected };

/// Wall ids a transmission scan must ignore — a leg's own reflecting
/// wall(s) touch the leg at an endpoint and must not count as crossings.
/// At most two walls are ever skipped (the two bounce walls of a
/// double-reflected leg), so a 2-slot mask beats scanning a list per
/// wall: the old initializer_list scan was O(walls x skip) per leg.
struct WallSkip {
  int w0 = -1;
  int w1 = -1;

  bool contains(int w) const { return w == w0 || w == w1; }
};

struct Path {
  PathKind kind = PathKind::kLineOfSight;
  double length_m = 0.0;
  /// Departure direction at the transmitter (global frame angle).
  double departure_rad = 0.0;
  /// Arrival direction at the receiver: the direction the energy comes
  /// *from*, seen from the receiver (global frame angle).
  double arrival_rad = 0.0;
  /// Loss beyond free space: reflection loss + blocker losses [dB].
  double excess_loss_db = 0.0;
  /// Number of blockers the path crosses.
  int blocker_crossings = 0;
  /// Index of the (first) reflecting wall in Room::walls().
  int wall_index = -1;
  /// Second wall for double-bounce paths.
  int wall_index2 = -1;
  /// Reflection points (first / second bounce).
  Vec2 via{};
  Vec2 via2{};
};

class RayTracer {
 public:
  explicit RayTracer(const Room& room);

  /// All propagation paths tx -> rx: the (possibly blocked) LoS plus one
  /// single-bounce reflection per visible wall/reflector, and — with
  /// `max_bounces` >= 2 — ordered double bounces (image-of-image method).
  /// Paths whose total excess loss exceeds `max_excess_loss_db` are
  /// dropped. With `apply_blockers` false, blocker crossings contribute
  /// no loss and no pruning: the result is the wall-only path *superset*
  /// a link cache uses to decide which nodes a blocker move can affect
  /// (blockers attenuate paths but never create or bend them).
  std::vector<Path> trace(Vec2 tx, Vec2 rx, double max_excess_loss_db = 60.0,
                          int max_bounces = 1, bool apply_blockers = true) const;

  /// Complex amplitude gain of one path at `freq_hz` (isotropic ends).
  static std::complex<double> path_amplitude(const Path& path, double freq_hz);

  /// Power-weighted RMS delay spread [s] of a path set at `freq_hz` —
  /// the metric that says whether a channel is flat across an mmX FDM
  /// channel (indoor mmWave: a few ns, i.e. flat over tens of MHz).
  static double rms_delay_spread_s(std::span<const Path> paths, double freq_hz);

  const Room& room() const { return *room_; }

 private:
  /// Sum of blocker losses along segment [a, b], scaled by `loss_scale`
  /// (1.0 for LoS, less for reflected paths whose 3-D elevation spread
  /// partially routes around a standing blocker); also counts crossings.
  double blocker_loss_db(Vec2 a, Vec2 b, int& crossings, double loss_scale) const;

  /// Sum of partition transmission losses along segment [a, b], skipping
  /// the walls in `skip`.
  double transmission_loss_db(Vec2 a, Vec2 b, WallSkip skip) const;

  const Room* room_;  // non-owning; Room must outlive the tracer
};

}  // namespace mmx::channel
