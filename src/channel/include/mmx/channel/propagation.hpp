// Propagation-loss primitives for 24 GHz indoor links.
#pragma once

#include <complex>

namespace mmx::channel {

/// Free-space (Friis) power loss [dB] — positive number.
double free_space_loss_db(double distance_m, double freq_hz);

/// Atmospheric (oxygen + water vapour) absorption [dB] over a path. At
/// 24 GHz this is ~0.2 dB/km — negligible indoors but modelled so range
/// sweeps degrade honestly at scale.
double atmospheric_loss_db(double distance_m, double freq_hz);

/// Total propagation loss of a path [dB]: free space + atmospheric +
/// `extra_db` (reflections, blockers).
double path_loss_db(double distance_m, double freq_hz, double extra_db = 0.0);

/// Complex amplitude gain of a path: magnitude from `path_loss_db`, phase
/// from the electrical length (-k * d).
std::complex<double> path_gain(double distance_m, double freq_hz, double extra_db = 0.0);

}  // namespace mmx::channel
