// Geometry acceleration engine: a compiled, epoch-keyed room plan.
//
// RayTracer::trace re-derives every wall image, scans every blocker per
// segment, and heap-allocates its result vector on each call — fine for
// one link, ruinous for the 10^4-node cache refills the scale lane runs
// (docs/SCALING.md). A RoomPlan compiles a Room snapshot once per
// Room::epoch() into flat, cache-friendly tables:
//
//   - per-wall precomputed segments (direction/length cached) so the
//     image-method mirror/intersect steps apply stored transforms,
//   - SoA blocker storage (centers/radii/losses in flat arrays) behind a
//     uniform-grid broad phase: a segment only exact-tests the discs
//     registered in the cells it crosses, with an AABB reject first,
//   - allocation-free tracing into a caller-owned PathList workspace
//     (the DspWorkspace pattern from docs/DSP_FASTPATH.md),
//   - batched tracing against a shared endpoint (the AP) whose per-wall
//     and per-wall-pair images are hoisted into an ImageTable once per
//     batch instead of once per node.
//
// Every path it produces is bit-identical to RayTracer::trace — same
// paths, same order, same doubles (tests/channel/room_plan_test.cpp) —
// so the sim layer's cached==uncached and thread-invariance guarantees
// carry over unchanged. See docs/GEOMETRY.md for the contract and the
// broad-phase conservativeness argument.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mmx/channel/ray_tracer.hpp"
#include "mmx/channel/room.hpp"

namespace mmx::channel {

class RoomPlan;

/// Caller-owned trace workspace: grown-once path storage plus the
/// broad-phase scratch (candidate list, stamp array, image buffers).
/// Reuse one PathList across traces — after the first few calls every
/// trace_into/trace_batch_into is allocation-free. Appended paths stay
/// valid until clear(); batch traces index them through the offsets
/// array (see RoomPlan::trace_batch_into).
class PathList {
 public:
  PathList() = default;

  /// Pre-grow the path store (setup-time allocation; optional — traces
  /// grow it on demand, amortized).
  void reserve_paths(std::size_t n) { ensure_paths(n); }

  void clear() { count_ = 0; }
  std::size_t size() const { return count_; }
  std::size_t path_capacity() const { return storage_.size(); }
  std::span<const Path> paths() const { return {storage_.data(), count_}; }
  /// Paths [begin, end) — the per-node window a batch trace reported.
  std::span<const Path> slice(std::size_t begin, std::size_t end) const {
    return {storage_.data() + begin, end - begin};
  }

 private:
  friend class RoomPlan;

  /// Next pre-grown path slot (never allocates; ensure_paths sizes the
  /// store before any trace loop runs).
  Path& commit() { return storage_[count_++]; }
  void ensure_paths(std::size_t n);
  void ensure_scratch(std::size_t images, std::size_t pair_images, std::size_t blockers);
  void ensure_dual(std::size_t n);
  std::uint32_t next_query();

  std::vector<Path> storage_;
  std::size_t count_ = 0;
  /// Dual-trace staging: blocker-free paths buffered here during the
  /// fused pass, then appended after the batch's blockers-applied block.
  std::vector<Path> dual_buf_;
  /// Single-trace image scratch (batch traces read a caller ImageTable).
  std::vector<Vec2> wall_image_;
  std::vector<Vec2> pair_image_;
  /// Broad-phase scratch: grid-gathered candidate blocker indices, and a
  /// per-blocker stamp (== query_) deduplicating multi-cell hits.
  std::vector<std::uint32_t> cand_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t query_ = 0;
};

/// Per-wall and per-wall-pair images of one fixed endpoint, hoisted out
/// of the per-node loop by trace_batch_into. Built by
/// RoomPlan::build_images; valid only for the (plan epoch, rx, bounces)
/// it was built for — the batch trace verifies all three.
struct ImageTable {
  Vec2 rx{};
  std::uint64_t room_epoch = ~0ull;
  int max_bounces = 0;
  std::vector<Vec2> wall_image;  ///< mirror_w(rx), one per wall
  std::vector<Vec2> pair_image;  ///< mirror_wi(mirror_wj(rx)), index wi * walls + wj
};

struct RoomPlanConfig {
  /// Broad-phase grid cell size [m]; 0 = auto (room min dimension / 8,
  /// floored at 0.5 m so a human blocker spans at most ~2x2 cells).
  double grid_cell_m = 0.0;
  /// Below this blocker count the grid is skipped for a flat SoA scan
  /// with AABB rejects — walk-the-grid bookkeeping only pays for itself
  /// once enough discs can be skipped.
  std::size_t grid_min_blockers = 8;
};

class RoomPlan {
 public:
  RoomPlan() = default;
  explicit RoomPlan(const Room& room, RoomPlanConfig cfg = {});

  /// Recompile from `room`'s current walls/blockers. Call whenever
  /// Room::epoch() moved past room_epoch(); cheap relative to even one
  /// 10^4-node refill (O(walls + blockers + grid cells)).
  void rebuild(const Room& room);

  bool compiled() const { return room_epoch_ != ~0ull; }
  /// Room::epoch() at the last rebuild (~0 = never compiled). The plan
  /// snapshots geometry: using it after its source Room mutated returns
  /// stale (pre-mutation) paths, exactly like a stale LinkCache entry.
  std::uint64_t room_epoch() const { return room_epoch_; }

  std::size_t wall_count() const { return walls_.size(); }
  std::size_t blocker_count() const { return bx_.size(); }
  /// Upper bound on paths a single trace can append (LoS + one per wall
  /// + one per ordered wall pair when max_bounces >= 2).
  std::size_t max_paths(int max_bounces) const;

  bool grid_enabled() const { return grid_on_; }
  int grid_cols() const { return grid_cols_; }
  int grid_rows() const { return grid_rows_; }
  double grid_cell_m() const { return cell_m_; }

  /// Hoist the per-wall (and, for max_bounces >= 2, per-wall-pair)
  /// images of `rx` into `out` for trace_batch_into.
  void build_images(Vec2 rx, int max_bounces, ImageTable& out) const;

  /// Bit-identical replacement for RayTracer::trace(tx, rx, ...):
  /// appends the path set to `out` and returns the appended window.
  std::span<const Path> trace_into(Vec2 tx, Vec2 rx, PathList& out,
                                   double max_excess_loss_db = 60.0, int max_bounces = 1,
                                   bool apply_blockers = true) const;

  /// Batched traces against the shared endpoint `ap`: for each i,
  /// appends the exact trace_into(nodes[i], ap, ...) path set, reusing
  /// `images` (build_images(ap, ...)) across the whole batch. Fills
  /// `offsets` (size nodes.size() + 1) so node i's paths are
  /// out.slice(offsets[i], offsets[i+1]); returns the full appended
  /// window. Mirrors are pure functions, so table lookups produce the
  /// same bits as trace_into's inline image computation.
  std::span<const Path> trace_batch_into(Vec2 ap, std::span<const Vec2> nodes,
                                         const ImageTable& images, PathList& out,
                                         std::span<std::uint32_t> offsets,
                                         double max_excess_loss_db = 60.0, int max_bounces = 1,
                                         bool apply_blockers = true) const;

  /// Fused batch: ONE geometric traversal per node yields BOTH the
  /// blockers-applied path set (gains) and the blocker-free set
  /// (corridors) — the intersections, leg lengths, angles and
  /// transmission terms are shared, only the two loss accumulations
  /// differ, and each runs in the reference order, so both result sets
  /// are bit-identical to separate trace_batch_into calls with
  /// apply_blockers true / false. This is the cache-refill kernel: a
  /// refresh needs exactly these two sets per node, and the corridor
  /// pass was previously a full second traversal (docs/GEOMETRY.md).
  /// Node i's windows: out.slice(offsets_on[i], offsets_on[i+1]) with
  /// blockers, out.slice(offsets_off[i], offsets_off[i+1]) without (the
  /// off windows follow every on window in storage). Both offset spans
  /// need nodes.size() + 1 slots. Returns the full appended window.
  std::span<const Path> trace_batch_dual_into(Vec2 ap, std::span<const Vec2> nodes,
                                              const ImageTable& images, PathList& out,
                                              std::span<std::uint32_t> offsets_on,
                                              std::span<std::uint32_t> offsets_off,
                                              double max_excess_loss_db = 60.0,
                                              int max_bounces = 1) const;

 private:
  struct WallRec {
    Segment seg;  ///< precomputed (cached direction/length)
    double reflection_loss_db = 0.0;
    double transmission_loss_db = 0.0;
    bool blocks_transmission = false;
  };

  void trace_one(Vec2 tx, Vec2 rx, const Vec2* wall_images, const Vec2* pair_images,
                 PathList& out, double max_excess_loss_db, int max_bounces,
                 bool apply_blockers) const;
  void trace_dual_one(Vec2 tx, Vec2 rx, const Vec2* wall_images, const Vec2* pair_images,
                      PathList& out, std::size_t& off_count, double max_excess_loss_db,
                      int max_bounces) const;
  double blocker_loss_db(Vec2 a, Vec2 b, int& crossings, double loss_scale,
                         PathList& ws) const;
  double transmission_loss_db(Vec2 a, Vec2 b, WallSkip skip) const;
  int clamp_col(double x) const;
  int clamp_row(double y) const;

  RoomPlanConfig cfg_{};
  std::uint64_t room_epoch_ = ~0ull;
  std::vector<WallRec> walls_;
  /// Indices of transmission-blocking walls, ascending — preserves the
  /// reference tracer's wall-order dB accumulation.
  std::vector<std::uint32_t> trans_walls_;
  /// SoA blockers (flat arrays scan without pulling Material strings or
  /// struct padding through the cache).
  std::vector<double> bx_;
  std::vector<double> by_;
  std::vector<double> br_;
  std::vector<double> bloss_db_;
  /// Uniform grid over the wall bounding box, CSR-packed: cell c holds
  /// cell_items_[cell_start_[c] .. cell_start_[c+1]). Registration and
  /// query both inflate by kGridSlackM, so float rounding can only add
  /// candidates (false positives are filtered by the exact disc test;
  /// false negatives would break bit-identity and cannot happen).
  bool grid_on_ = false;
  int grid_cols_ = 0;
  int grid_rows_ = 0;
  double cell_m_ = 0.0;
  double grid_x0_ = 0.0;
  double grid_y0_ = 0.0;
  std::vector<std::uint32_t> cell_start_;
  std::vector<std::uint32_t> cell_items_;
};

}  // namespace mmx::channel
