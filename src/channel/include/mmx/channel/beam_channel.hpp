// End-to-end complex channel gains per transmit beam.
//
// This is where OTAM's physics lives: for a node at a pose transmitting
// through Beam 0 or Beam 1 of its orthogonal pair, the multipath channel
// collapses to one complex gain per beam,
//     h_b = sum_paths  F_b(departure) * G_ap(arrival) * a_path,
// and the AP sees the carrier amplitude toggle between |h1| and |h0| —
// ASK "modulated by the channel" (paper §6.1).
#pragma once

#include <complex>
#include <span>

#include "mmx/antenna/element.hpp"
#include "mmx/antenna/mmx_beams.hpp"
#include "mmx/channel/ray_tracer.hpp"

namespace mmx::channel {

/// A position + facing direction in the 2-D world frame.
struct Pose {
  Vec2 position;
  double orientation_rad = 0.0;  ///< boresight direction, CCW from +x

  bool operator==(const Pose&) const = default;
};

struct BeamGains {
  std::complex<double> h0;  ///< channel gain through Beam 0
  std::complex<double> h1;  ///< channel gain through Beam 1
  int paths_used = 0;

  /// OTAM amplitude contrast |log-ratio| between the two beams [dB].
  double contrast_db() const;
};

/// Compute the per-beam gains between a node (with the mmX beam pair)
/// and the AP (with a single element pattern). Paths combine coherently
/// (instantaneous channel, includes small-scale fading).
BeamGains compute_beam_gains(const RayTracer& tracer, const Pose& node,
                             const antenna::MmxBeamPair& beams, const Pose& ap,
                             const antenna::Element& ap_antenna, double freq_hz);

/// Same accumulation over an already-traced path set — the entry point
/// for the RoomPlan batch path, where one trace_batch_into produces the
/// per-node path windows. Bit-identical to compute_beam_gains when
/// `paths` is the trace of (node.position -> ap.position).
BeamGains beam_gains_from_paths(std::span<const Path> paths, const Pose& node,
                                const antenna::MmxBeamPair& beams, const Pose& ap,
                                const antenna::Element& ap_antenna, double freq_hz);

/// Fading-averaged variant: |h_b| is the RMS over path phases (incoherent
/// power sum), the quantity a time-averaged SNR measurement sees when
/// people moving through the room scramble the multipath phases (the
/// paper's §9.2 procedure). Returned gains are real-valued amplitudes.
BeamGains compute_beam_gains_avg(const RayTracer& tracer, const Pose& node,
                                 const antenna::MmxBeamPair& beams, const Pose& ap,
                                 const antenna::Element& ap_antenna, double freq_hz);

/// Channel gain for an arbitrary single transmit pattern (used by the
/// beam-search baseline with steered phased-array beams).
std::complex<double> compute_pattern_gain(const RayTracer& tracer, const Pose& tx,
                                          const antenna::LinearArray& tx_array, const Pose& rx,
                                          const antenna::Element& rx_antenna, double freq_hz);

}  // namespace mmx::channel
