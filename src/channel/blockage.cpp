#include "mmx/channel/blockage.hpp"

#include <stdexcept>

namespace mmx::channel {

WalkingCrowd::WalkingCrowd(Room& room, std::size_t count, double speed_mps, Rng& rng)
    : room_(&room) {
  walkers_.reserve(count);
  blocker_ids_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Vec2 start{rng.uniform(0.3, room.width() - 0.3), rng.uniform(0.3, room.height() - 0.3)};
    walkers_.emplace_back(start, room.width(), room.height(), speed_mps, rng);
    blocker_ids_.push_back(room.add_blocker(human_blocker(start)));
  }
}

void WalkingCrowd::update(double dt, Rng& rng) {
  for (std::size_t i = 0; i < walkers_.size(); ++i) {
    walkers_[i].update(dt, rng);
    room_->move_blocker(blocker_ids_[i], walkers_[i].position());
  }
}

std::size_t park_blocker_on_los(Room& room, Vec2 a, Vec2 b, double frac) {
  if (frac <= 0.0 || frac >= 1.0)
    throw std::invalid_argument("park_blocker_on_los: frac must be in (0,1)");
  const Vec2 p = a + (b - a) * frac;
  return room.add_blocker(human_blocker(p));
}

}  // namespace mmx::channel
