#include "mmx/channel/room_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mmx::channel {

namespace {
// Keep in sync with ray_tracer.cpp: reflected paths take half the dB body
// loss (3-D elevation spread routes part of the Fresnel zone around a
// standing blocker); LoS takes the full loss.
constexpr double kReflectedBlockageFraction = 0.5;

// Conservativeness margin for the broad phase, in metres. Registration
// and query both inflate their AABBs/windows by this much, so the ~1e-13
// rounding of the cell-interpolation arithmetic can only ever ADD cells
// to the walk — a disc the exact test would hit is always among the
// candidates, which is what keeps the fast path bit-identical.
constexpr double kGridSlackM = 1e-9;
}  // namespace

// ---------------------------------------------------------------------------
// PathList

void PathList::ensure_paths(std::size_t n) {
  if (storage_.size() >= n) return;
  storage_.resize(n);  // mmx-analyze: allow(hot-path-alloc) -- amortized workspace growth
}

void PathList::ensure_scratch(std::size_t images, std::size_t pair_images,
                              std::size_t blockers) {
  if (wall_image_.size() < images)
    wall_image_.resize(images);  // mmx-analyze: allow(hot-path-alloc) -- amortized growth
  if (pair_image_.size() < pair_images)
    pair_image_.resize(pair_images);  // mmx-analyze: allow(hot-path-alloc) -- amortized growth
  if (cand_.size() < blockers)
    cand_.resize(blockers);  // mmx-analyze: allow(hot-path-alloc) -- amortized growth
  // resize zero-fills the new stamps; 0 is never a live query id (see
  // next_query), so grown entries are correctly "not seen this query".
  if (stamp_.size() < blockers)
    stamp_.resize(blockers);  // mmx-analyze: allow(hot-path-alloc) -- amortized growth
}

void PathList::ensure_dual(std::size_t n) {
  if (dual_buf_.size() < n)
    dual_buf_.resize(n);  // mmx-analyze: allow(hot-path-alloc) -- amortized workspace growth
}

std::uint32_t PathList::next_query() {
  if (++query_ == 0) {
    // Wrapped: old stamps could collide with re-issued ids; reset both.
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    query_ = 1;
  }
  return query_;
}

// ---------------------------------------------------------------------------
// RoomPlan compilation

RoomPlan::RoomPlan(const Room& room, RoomPlanConfig cfg) : cfg_(cfg) { rebuild(room); }

void RoomPlan::rebuild(const Room& room) {
  room_epoch_ = room.epoch();

  const auto& walls = room.walls();
  walls_.clear();
  trans_walls_.clear();
  walls_.reserve(walls.size());  // mmx-analyze: allow(hot-path-alloc) -- once per epoch
  for (std::size_t w = 0; w < walls.size(); ++w) {
    WallRec rec;
    rec.seg = walls[w].segment;
    rec.seg.precompute();
    rec.reflection_loss_db = walls[w].material.reflection_loss_db;
    rec.transmission_loss_db = walls[w].material.transmission_loss_db;
    rec.blocks_transmission = walls[w].blocks_transmission;
    walls_.push_back(rec);  // mmx-analyze: allow(hot-path-alloc) -- once per epoch
    if (rec.blocks_transmission)
      trans_walls_.push_back(  // mmx-analyze: allow(hot-path-alloc) -- once per epoch
          static_cast<std::uint32_t>(w));
  }

  const auto& blockers = room.blockers();
  const std::size_t n = blockers.size();
  bx_.resize(n);        // mmx-analyze: allow(hot-path-alloc) -- once per epoch
  by_.resize(n);        // mmx-analyze: allow(hot-path-alloc) -- once per epoch
  br_.resize(n);        // mmx-analyze: allow(hot-path-alloc) -- once per epoch
  bloss_db_.resize(n);  // mmx-analyze: allow(hot-path-alloc) -- once per epoch
  for (std::size_t i = 0; i < n; ++i) {
    bx_[i] = blockers[i].center.x;
    by_[i] = blockers[i].center.y;
    br_[i] = blockers[i].radius;
    bloss_db_[i] = blockers[i].loss_db;
  }

  // --- Broad-phase grid over the wall bounding box ----------------------
  grid_on_ = false;
  grid_cols_ = grid_rows_ = 0;
  cell_m_ = 0.0;
  cell_start_.clear();
  cell_items_.clear();
  if (n < cfg_.grid_min_blockers || walls_.empty()) return;

  double minx = walls_[0].seg.a.x;
  double maxx = minx;
  double miny = walls_[0].seg.a.y;
  double maxy = miny;
  for (const WallRec& w : walls_) {
    minx = std::min({minx, w.seg.a.x, w.seg.b.x});
    maxx = std::max({maxx, w.seg.a.x, w.seg.b.x});
    miny = std::min({miny, w.seg.a.y, w.seg.b.y});
    maxy = std::max({maxy, w.seg.a.y, w.seg.b.y});
  }
  const double spanx = maxx - minx;
  const double spany = maxy - miny;
  if (spanx <= 0.0 || spany <= 0.0) return;  // degenerate (collinear walls): flat scan

  double cell =
      cfg_.grid_cell_m > 0.0 ? cfg_.grid_cell_m : std::max(0.5, std::min(spanx, spany) / 8.0);
  // Bound the table at ~1M cells whatever the configured cell size.
  cell = std::max({cell, spanx / 1024.0, spany / 1024.0});
  grid_x0_ = minx;
  grid_y0_ = miny;
  cell_m_ = cell;
  grid_cols_ = std::max(1, static_cast<int>(std::ceil(spanx / cell)));
  grid_rows_ = std::max(1, static_cast<int>(std::ceil(spany / cell)));
  const std::size_t cells =
      static_cast<std::size_t>(grid_cols_) * static_cast<std::size_t>(grid_rows_);

  // CSR pack: count, prefix-sum, fill. Discs register in every cell their
  // slack-inflated AABB overlaps (clamped to the grid — out-of-range
  // geometry lands in border cells, matching the clamped query walk).
  cell_start_.assign(cells + 1, 0);  // mmx-analyze: allow(hot-path-alloc) -- once per epoch
  const auto cell_rect = [&](std::size_t i, int& c0, int& c1, int& r0, int& r1) {
    c0 = clamp_col(bx_[i] - br_[i] - kGridSlackM);
    c1 = clamp_col(bx_[i] + br_[i] + kGridSlackM);
    r0 = clamp_row(by_[i] - br_[i] - kGridSlackM);
    r1 = clamp_row(by_[i] + br_[i] + kGridSlackM);
  };
  for (std::size_t i = 0; i < n; ++i) {
    int c0 = 0;
    int c1 = 0;
    int r0 = 0;
    int r1 = 0;
    cell_rect(i, c0, c1, r0, r1);
    for (int r = r0; r <= r1; ++r)
      for (int c = c0; c <= c1; ++c)
        ++cell_start_[static_cast<std::size_t>(r) * static_cast<std::size_t>(grid_cols_) +
                      static_cast<std::size_t>(c) + 1];
  }
  for (std::size_t c = 1; c <= cells; ++c) cell_start_[c] += cell_start_[c - 1];
  cell_items_.resize(  // mmx-analyze: allow(hot-path-alloc) -- once per epoch
      cell_start_[cells]);
  std::vector<std::uint32_t> cursor(  // mmx-analyze: allow(hot-path-alloc) -- once per epoch
      cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    int c0 = 0;
    int c1 = 0;
    int r0 = 0;
    int r1 = 0;
    cell_rect(i, c0, c1, r0, r1);
    for (int r = r0; r <= r1; ++r)
      for (int c = c0; c <= c1; ++c) {
        const std::size_t cell_ix =
            static_cast<std::size_t>(r) * static_cast<std::size_t>(grid_cols_) +
            static_cast<std::size_t>(c);
        cell_items_[cursor[cell_ix]++] = static_cast<std::uint32_t>(i);
      }
  }
  grid_on_ = true;
}

int RoomPlan::clamp_col(double x) const {
  const int c = static_cast<int>(std::floor((x - grid_x0_) / cell_m_));
  return std::clamp(c, 0, grid_cols_ - 1);
}

int RoomPlan::clamp_row(double y) const {
  const int r = static_cast<int>(std::floor((y - grid_y0_) / cell_m_));
  return std::clamp(r, 0, grid_rows_ - 1);
}

std::size_t RoomPlan::max_paths(int max_bounces) const {
  const std::size_t w = walls_.size();
  return 1 + w + (max_bounces >= 2 && w > 1 ? w * (w - 1) : 0);
}

void RoomPlan::build_images(Vec2 rx, int max_bounces, ImageTable& out) const {
  if (!compiled()) throw std::logic_error("RoomPlan: build_images before rebuild()");
  const std::size_t w = walls_.size();
  out.rx = rx;
  out.room_epoch = room_epoch_;
  out.max_bounces = max_bounces;
  out.wall_image.resize(w);  // mmx-analyze: allow(hot-path-alloc) -- once per batch
  for (std::size_t i = 0; i < w; ++i) out.wall_image[i] = walls_[i].seg.mirror(rx);
  if (max_bounces >= 2) {
    out.pair_image.resize(w * w);  // mmx-analyze: allow(hot-path-alloc) -- once per batch
    for (std::size_t wi = 0; wi < w; ++wi)
      for (std::size_t wj = 0; wj < w; ++wj) {
        if (wi == wj) continue;
        out.pair_image[wi * w + wj] = walls_[wi].seg.mirror(out.wall_image[wj]);
      }
  } else {
    out.pair_image.clear();
  }
}

// ---------------------------------------------------------------------------
// Tracing

double RoomPlan::transmission_loss_db(Vec2 a, Vec2 b, WallSkip skip) const {
  // trans_walls_ is ascending, so the dB sum accumulates in the exact
  // wall order of RayTracer::transmission_loss_db.
  double loss = 0.0;
  for (const std::uint32_t w : trans_walls_) {
    if (skip.contains(static_cast<int>(w))) continue;
    if (walls_[w].seg.intersect(a, b)) loss += walls_[w].transmission_loss_db;
  }
  return loss;
}

double RoomPlan::blocker_loss_db(Vec2 a, Vec2 b, int& crossings, double loss_scale,
                                 PathList& ws) const {
  const std::size_t n = bx_.size();
  if (n == 0) return 0.0;
  const double minx = std::min(a.x, b.x) - kGridSlackM;
  const double maxx = std::max(a.x, b.x) + kGridSlackM;
  const double miny = std::min(a.y, b.y) - kGridSlackM;
  const double maxy = std::max(a.y, b.y) + kGridSlackM;
  double loss = 0.0;

  if (!grid_on_) {
    // Flat SoA scan: index order matches the reference loop; the AABB
    // reject is sound because an exact hit implies the closest point on
    // the segment lies inside the disc's AABB (so the boxes overlap).
    for (std::size_t i = 0; i < n; ++i) {
      if (bx_[i] + br_[i] < minx || bx_[i] - br_[i] > maxx || by_[i] + br_[i] < miny ||
          by_[i] - br_[i] > maxy)
        continue;
      if (segment_hits_disc(a, b, Vec2{bx_[i], by_[i]}, br_[i])) {
        loss += bloss_db_[i] * loss_scale;
        ++crossings;
      }
    }
    return loss;
  }

  // Grid walk: per column of the segment's x-range, the linearly
  // interpolated (t-clamped, slack-inflated) y-window picks the rows the
  // segment can touch; stamps deduplicate discs spanning several cells.
  const std::uint32_t q = ws.next_query();
  std::size_t ncand = 0;
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const int c0 = clamp_col(minx);
  const int c1 = clamp_col(maxx);
  for (int c = c0; c <= c1; ++c) {
    double t0 = 0.0;
    double t1 = 1.0;
    if (dx != 0.0) {
      const double cx0 = grid_x0_ + cell_m_ * static_cast<double>(c);
      double ta = (cx0 - kGridSlackM - a.x) / dx;
      double tb = (cx0 + cell_m_ + kGridSlackM - a.x) / dx;
      if (ta > tb) std::swap(ta, tb);
      // Clamping to [0, 1] keeps edge columns covering any segment
      // overhang beyond the grid (the walk itself is clamped too).
      t0 = std::clamp(ta, 0.0, 1.0);
      t1 = std::clamp(tb, 0.0, 1.0);
    }
    const double ya = a.y + dy * t0;
    const double yb = a.y + dy * t1;
    const int r0 = clamp_row(std::min(ya, yb) - kGridSlackM);
    const int r1 = clamp_row(std::max(ya, yb) + kGridSlackM);
    for (int r = r0; r <= r1; ++r) {
      const std::size_t cell_ix = static_cast<std::size_t>(r) *
                                      static_cast<std::size_t>(grid_cols_) +
                                  static_cast<std::size_t>(c);
      const std::uint32_t kend = cell_start_[cell_ix + 1];
      for (std::uint32_t k = cell_start_[cell_ix]; k < kend; ++k) {
        const std::uint32_t i = cell_items_[k];
        if (ws.stamp_[i] == q) continue;
        ws.stamp_[i] = q;
        ws.cand_[ncand++] = i;
      }
    }
  }

  // Ascending blocker index: the dB accumulation (and crossing count)
  // must run in the reference loop's order to produce the same bits.
  for (std::size_t s = 1; s < ncand; ++s) {
    const std::uint32_t v = ws.cand_[s];
    std::size_t j = s;
    while (j > 0 && ws.cand_[j - 1] > v) {
      ws.cand_[j] = ws.cand_[j - 1];
      --j;
    }
    ws.cand_[j] = v;
  }
  for (std::size_t s = 0; s < ncand; ++s) {
    const std::uint32_t i = ws.cand_[s];
    if (bx_[i] + br_[i] < minx || bx_[i] - br_[i] > maxx || by_[i] + br_[i] < miny ||
        by_[i] - br_[i] > maxy)
      continue;
    if (segment_hits_disc(a, b, Vec2{bx_[i], by_[i]}, br_[i])) {
      loss += bloss_db_[i] * loss_scale;
      ++crossings;
    }
  }
  return loss;
}

void RoomPlan::trace_one(Vec2 tx, Vec2 rx, const Vec2* wall_images, const Vec2* pair_images,
                         PathList& out, double max_excess_loss_db, int max_bounces,
                         bool apply_blockers) const {
  // Mirrors RayTracer::trace statement-for-statement; only the image
  // computation (tabulated), the blocker scan (broad-phased) and the
  // path storage (workspace) differ — all bit-preserving substitutions.

  // --- Line of sight ---------------------------------------------------
  {
    Path p;
    p.kind = PathKind::kLineOfSight;
    p.length_m = distance(tx, rx);
    p.departure_rad = (rx - tx).angle();
    p.arrival_rad = (tx - rx).angle();
    int crossings = 0;
    p.excess_loss_db = apply_blockers ? blocker_loss_db(tx, rx, crossings, 1.0, out) : 0.0;
    p.excess_loss_db += transmission_loss_db(tx, rx, WallSkip{});
    p.blocker_crossings = crossings;
    if (p.excess_loss_db <= max_excess_loss_db) out.commit() = p;
  }

  // --- Single-bounce reflections (image method) ------------------------
  const std::size_t nwalls = walls_.size();
  for (std::size_t w = 0; w < nwalls; ++w) {
    const WallRec& wall = walls_[w];
    const Vec2 image = wall_images[w];
    const auto hit = wall.seg.intersect(tx, image);
    if (!hit) continue;
    const Vec2 via = *hit;
    const double leg1 = distance(tx, via);
    const double leg2 = distance(via, rx);
    if (leg1 < 1e-6 || leg2 < 1e-6) continue;

    Path p;
    p.kind = PathKind::kReflected;
    p.length_m = leg1 + leg2;
    p.departure_rad = (via - tx).angle();
    p.arrival_rad = (via - rx).angle();
    p.wall_index = static_cast<int>(w);
    p.via = via;
    int crossings = 0;
    double loss = wall.reflection_loss_db;
    loss += apply_blockers
                ? blocker_loss_db(tx, via, crossings, kReflectedBlockageFraction, out)
                : 0.0;
    loss += apply_blockers
                ? blocker_loss_db(via, rx, crossings, kReflectedBlockageFraction, out)
                : 0.0;
    const int wall_id = static_cast<int>(w);
    loss += transmission_loss_db(tx, via, WallSkip{wall_id});
    loss += transmission_loss_db(via, rx, WallSkip{wall_id});
    p.excess_loss_db = loss;
    p.blocker_crossings = crossings;
    if (p.excess_loss_db <= max_excess_loss_db) out.commit() = p;
  }

  // --- Double bounces (image of image) ----------------------------------
  if (max_bounces >= 2) {
    for (std::size_t wi = 0; wi < nwalls; ++wi) {
      for (std::size_t wj = 0; wj < nwalls; ++wj) {
        if (wi == wj) continue;
        const WallRec& first = walls_[wi];
        const WallRec& second = walls_[wj];
        const Vec2 image_j = wall_images[wj];
        const Vec2 image_ji = pair_images[wi * nwalls + wj];
        const auto hit1 = first.seg.intersect(tx, image_ji);
        if (!hit1) continue;
        const Vec2 p1 = *hit1;
        const auto hit2 = second.seg.intersect(p1, image_j);
        if (!hit2) continue;
        const Vec2 p2 = *hit2;
        const double leg1 = distance(tx, p1);
        const double leg2 = distance(p1, p2);
        const double leg3 = distance(p2, rx);
        if (leg1 < 1e-6 || leg2 < 1e-6 || leg3 < 1e-6) continue;

        Path p;
        p.kind = PathKind::kDoubleReflected;
        p.length_m = leg1 + leg2 + leg3;
        p.departure_rad = (p1 - tx).angle();
        p.arrival_rad = (p2 - rx).angle();
        p.wall_index = static_cast<int>(wi);
        p.wall_index2 = static_cast<int>(wj);
        p.via = p1;
        p.via2 = p2;
        int crossings = 0;
        double loss = first.reflection_loss_db + second.reflection_loss_db;
        loss += apply_blockers
                    ? blocker_loss_db(tx, p1, crossings, kReflectedBlockageFraction, out)
                    : 0.0;
        loss += apply_blockers
                    ? blocker_loss_db(p1, p2, crossings, kReflectedBlockageFraction, out)
                    : 0.0;
        loss += apply_blockers
                    ? blocker_loss_db(p2, rx, crossings, kReflectedBlockageFraction, out)
                    : 0.0;
        const int wid = static_cast<int>(wi);
        const int wjd = static_cast<int>(wj);
        loss += transmission_loss_db(tx, p1, WallSkip{wid});
        loss += transmission_loss_db(p1, p2, WallSkip{wid, wjd});
        loss += transmission_loss_db(p2, rx, WallSkip{wjd});
        p.excess_loss_db = loss;
        p.blocker_crossings = crossings;
        if (p.excess_loss_db <= max_excess_loss_db) out.commit() = p;
      }
    }
  }
}

void RoomPlan::trace_dual_one(Vec2 tx, Vec2 rx, const Vec2* wall_images,
                              const Vec2* pair_images, PathList& out, std::size_t& off_count,
                              double max_excess_loss_db, int max_bounces) const {
  // One geometric pass, two loss accumulations. Every shared term
  // (intersections, legs, angles, transmission dB) is computed once and
  // fed to both sums; each sum adds its terms in the exact order of the
  // reference's apply_blockers=true / =false runs ("+= 0.0" included —
  // these losses are never -0.0 or NaN, so x += 0.0 preserves x's bits),
  // keeping both outputs bit-identical to two trace_one passes.

  // --- Line of sight ---------------------------------------------------
  {
    Path p;
    p.kind = PathKind::kLineOfSight;
    p.length_m = distance(tx, rx);
    p.departure_rad = (rx - tx).angle();
    p.arrival_rad = (tx - rx).angle();
    int crossings = 0;
    const double blocked = blocker_loss_db(tx, rx, crossings, 1.0, out);
    const double trans = transmission_loss_db(tx, rx, WallSkip{});
    double off = 0.0;
    off += trans;
    p.excess_loss_db = blocked;
    p.excess_loss_db += trans;
    p.blocker_crossings = crossings;
    if (p.excess_loss_db <= max_excess_loss_db) out.commit() = p;
    if (off <= max_excess_loss_db) {
      Path q = p;
      q.excess_loss_db = off;
      q.blocker_crossings = 0;
      out.dual_buf_[off_count++] = q;
    }
  }

  // --- Single-bounce reflections (image method) ------------------------
  const std::size_t nwalls = walls_.size();
  for (std::size_t w = 0; w < nwalls; ++w) {
    const WallRec& wall = walls_[w];
    const Vec2 image = wall_images[w];
    const auto hit = wall.seg.intersect(tx, image);
    if (!hit) continue;
    const Vec2 via = *hit;
    const double leg1 = distance(tx, via);
    const double leg2 = distance(via, rx);
    if (leg1 < 1e-6 || leg2 < 1e-6) continue;

    Path p;
    p.kind = PathKind::kReflected;
    p.length_m = leg1 + leg2;
    p.departure_rad = (via - tx).angle();
    p.arrival_rad = (via - rx).angle();
    p.wall_index = static_cast<int>(w);
    p.via = via;
    int crossings = 0;
    const double b1 = blocker_loss_db(tx, via, crossings, kReflectedBlockageFraction, out);
    const double b2 = blocker_loss_db(via, rx, crossings, kReflectedBlockageFraction, out);
    const int wall_id = static_cast<int>(w);
    const double t1 = transmission_loss_db(tx, via, WallSkip{wall_id});
    const double t2 = transmission_loss_db(via, rx, WallSkip{wall_id});
    double loss = wall.reflection_loss_db;
    double off = wall.reflection_loss_db;
    loss += b1;
    loss += b2;
    off += 0.0;
    off += 0.0;
    loss += t1;
    loss += t2;
    off += t1;
    off += t2;
    p.excess_loss_db = loss;
    p.blocker_crossings = crossings;
    if (p.excess_loss_db <= max_excess_loss_db) out.commit() = p;
    if (off <= max_excess_loss_db) {
      Path q = p;
      q.excess_loss_db = off;
      q.blocker_crossings = 0;
      out.dual_buf_[off_count++] = q;
    }
  }

  // --- Double bounces (image of image) ----------------------------------
  if (max_bounces >= 2) {
    for (std::size_t wi = 0; wi < nwalls; ++wi) {
      for (std::size_t wj = 0; wj < nwalls; ++wj) {
        if (wi == wj) continue;
        const WallRec& first = walls_[wi];
        const WallRec& second = walls_[wj];
        const Vec2 image_j = wall_images[wj];
        const Vec2 image_ji = pair_images[wi * nwalls + wj];
        const auto hit1 = first.seg.intersect(tx, image_ji);
        if (!hit1) continue;
        const Vec2 p1 = *hit1;
        const auto hit2 = second.seg.intersect(p1, image_j);
        if (!hit2) continue;
        const Vec2 p2 = *hit2;
        const double leg1 = distance(tx, p1);
        const double leg2 = distance(p1, p2);
        const double leg3 = distance(p2, rx);
        if (leg1 < 1e-6 || leg2 < 1e-6 || leg3 < 1e-6) continue;

        Path p;
        p.kind = PathKind::kDoubleReflected;
        p.length_m = leg1 + leg2 + leg3;
        p.departure_rad = (p1 - tx).angle();
        p.arrival_rad = (p2 - rx).angle();
        p.wall_index = static_cast<int>(wi);
        p.wall_index2 = static_cast<int>(wj);
        p.via = p1;
        p.via2 = p2;
        int crossings = 0;
        const double b1 = blocker_loss_db(tx, p1, crossings, kReflectedBlockageFraction, out);
        const double b2 = blocker_loss_db(p1, p2, crossings, kReflectedBlockageFraction, out);
        const double b3 = blocker_loss_db(p2, rx, crossings, kReflectedBlockageFraction, out);
        const int wid = static_cast<int>(wi);
        const int wjd = static_cast<int>(wj);
        const double t1 = transmission_loss_db(tx, p1, WallSkip{wid});
        const double t2 = transmission_loss_db(p1, p2, WallSkip{wid, wjd});
        const double t3 = transmission_loss_db(p2, rx, WallSkip{wjd});
        double loss = first.reflection_loss_db + second.reflection_loss_db;
        double off = first.reflection_loss_db + second.reflection_loss_db;
        loss += b1;
        loss += b2;
        loss += b3;
        off += 0.0;
        off += 0.0;
        off += 0.0;
        loss += t1;
        loss += t2;
        loss += t3;
        off += t1;
        off += t2;
        off += t3;
        p.excess_loss_db = loss;
        p.blocker_crossings = crossings;
        if (p.excess_loss_db <= max_excess_loss_db) out.commit() = p;
        if (off <= max_excess_loss_db) {
          Path q = p;
          q.excess_loss_db = off;
          q.blocker_crossings = 0;
          out.dual_buf_[off_count++] = q;
        }
      }
    }
  }
}

std::span<const Path> RoomPlan::trace_into(Vec2 tx, Vec2 rx, PathList& out,
                                           double max_excess_loss_db, int max_bounces,
                                           bool apply_blockers) const {
  if (!compiled()) throw std::logic_error("RoomPlan: trace_into before rebuild()");
  if (max_bounces < 1 || max_bounces > 2)
    throw std::invalid_argument("RoomPlan: max_bounces must be 1 or 2");
  if (tx == rx) throw std::invalid_argument("RoomPlan: tx and rx coincide");

  const std::size_t begin = out.size();
  const std::size_t w = walls_.size();
  out.ensure_paths(begin + max_paths(max_bounces));
  out.ensure_scratch(w, max_bounces >= 2 ? w * w : 0, bx_.size());
  for (std::size_t i = 0; i < w; ++i) out.wall_image_[i] = walls_[i].seg.mirror(rx);
  if (max_bounces >= 2) {
    for (std::size_t wi = 0; wi < w; ++wi)
      for (std::size_t wj = 0; wj < w; ++wj) {
        if (wi == wj) continue;
        out.pair_image_[wi * w + wj] = walls_[wi].seg.mirror(out.wall_image_[wj]);
      }
  }
  trace_one(tx, rx, out.wall_image_.data(), out.pair_image_.data(), out, max_excess_loss_db,
            max_bounces, apply_blockers);
  return out.slice(begin, out.size());
}

std::span<const Path> RoomPlan::trace_batch_into(Vec2 ap, std::span<const Vec2> nodes,
                                                 const ImageTable& images, PathList& out,
                                                 std::span<std::uint32_t> offsets,
                                                 double max_excess_loss_db, int max_bounces,
                                                 bool apply_blockers) const {
  if (!compiled()) throw std::logic_error("RoomPlan: trace_batch_into before rebuild()");
  if (max_bounces < 1 || max_bounces > 2)
    throw std::invalid_argument("RoomPlan: max_bounces must be 1 or 2");
  if (offsets.size() != nodes.size() + 1)
    throw std::invalid_argument("RoomPlan: offsets must have nodes.size() + 1 slots");
  if (images.room_epoch != room_epoch_ || !(images.rx == ap) ||
      images.max_bounces < max_bounces)
    throw std::invalid_argument("RoomPlan: ImageTable stale or built for another endpoint");

  const std::size_t begin = out.size();
  out.ensure_paths(begin + nodes.size() * max_paths(max_bounces));
  out.ensure_scratch(0, 0, bx_.size());
  offsets[0] = static_cast<std::uint32_t>(begin);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] == ap) throw std::invalid_argument("RoomPlan: tx and rx coincide");
    trace_one(nodes[i], ap, images.wall_image.data(), images.pair_image.data(), out,
              max_excess_loss_db, max_bounces, apply_blockers);
    offsets[i + 1] = static_cast<std::uint32_t>(out.size());
  }
  return out.slice(begin, out.size());
}

std::span<const Path> RoomPlan::trace_batch_dual_into(Vec2 ap, std::span<const Vec2> nodes,
                                                      const ImageTable& images, PathList& out,
                                                      std::span<std::uint32_t> offsets_on,
                                                      std::span<std::uint32_t> offsets_off,
                                                      double max_excess_loss_db,
                                                      int max_bounces) const {
  if (!compiled()) throw std::logic_error("RoomPlan: trace_batch_dual_into before rebuild()");
  if (max_bounces < 1 || max_bounces > 2)
    throw std::invalid_argument("RoomPlan: max_bounces must be 1 or 2");
  if (offsets_on.size() != nodes.size() + 1 || offsets_off.size() != nodes.size() + 1)
    throw std::invalid_argument("RoomPlan: offsets must have nodes.size() + 1 slots");
  if (images.room_epoch != room_epoch_ || !(images.rx == ap) ||
      images.max_bounces < max_bounces)
    throw std::invalid_argument("RoomPlan: ImageTable stale or built for another endpoint");

  const std::size_t begin = out.size();
  const std::size_t maxp = max_paths(max_bounces);
  out.ensure_paths(begin + 2 * nodes.size() * maxp);
  out.ensure_scratch(0, 0, bx_.size());
  out.ensure_dual(nodes.size() * maxp);
  std::size_t off_count = 0;
  offsets_on[0] = static_cast<std::uint32_t>(begin);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] == ap) throw std::invalid_argument("RoomPlan: tx and rx coincide");
    trace_dual_one(nodes[i], ap, images.wall_image.data(), images.pair_image.data(), out,
                   off_count, max_excess_loss_db, max_bounces);
    offsets_on[i + 1] = static_cast<std::uint32_t>(out.size());
    offsets_off[i + 1] = static_cast<std::uint32_t>(off_count);  // cumulative; rebased below
  }
  // The staged blocker-free paths follow the whole blockers-applied
  // block, so both window families index one contiguous storage.
  const std::size_t off_base = out.size();
  for (std::size_t k = 0; k < off_count; ++k) out.commit() = out.dual_buf_[k];
  offsets_off[0] = static_cast<std::uint32_t>(off_base);
  for (std::size_t i = 0; i < nodes.size(); ++i)
    offsets_off[i + 1] += static_cast<std::uint32_t>(off_base);
  return out.slice(begin, out.size());
}

}  // namespace mmx::channel
