#include "mmx/dsp/window.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::dsp {

Rvec make_window(WindowKind kind, std::size_t n) {
  Rvec w(n, 1.0);
  if (n <= 1) return w;
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / denom;  // 0..1
    switch (kind) {
      case WindowKind::kRect:
        w[i] = 1.0;
        break;
      case WindowKind::kHann:
        w[i] = 0.5 - 0.5 * std::cos(kTwoPi * t);  // mmx-lint: allow(trig-per-sample) -- window design: one-time per-tap table construction
        break;
      case WindowKind::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(kTwoPi * t);  // mmx-lint: allow(trig-per-sample) -- window design: one-time per-tap table construction
        break;
      case WindowKind::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(kTwoPi * t) + 0.08 * std::cos(2.0 * kTwoPi * t);  // mmx-lint: allow(trig-per-sample) -- window design: one-time per-tap table construction
        break;
    }
  }
  return w;
}

void apply_window(std::span<Complex> x, std::span<const double> w) {
  if (x.size() != w.size()) throw std::invalid_argument("apply_window: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) x[i] *= w[i];
}

}  // namespace mmx::dsp
