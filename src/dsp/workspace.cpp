#include "mmx/dsp/workspace.hpp"

#include "mmx/obs/obs.hpp"

namespace mmx::dsp {

template <typename Vec>
Vec* DspWorkspace::acquire(std::vector<std::unique_ptr<Vec>>& pool, std::vector<Vec*>& free_list,
                           std::size_t n) {
  Vec* v = nullptr;
  if (free_list.empty()) {
    pool.push_back(std::make_unique<Vec>());
    v = pool.back().get();
    ++alloc_events_;
    MMX_OBS_COUNT("dsp.workspace.alloc_events", 1);
  } else {
    v = free_list.back();
    free_list.pop_back();
  }
  const std::size_t cap_before = v->capacity();
  v->resize(n);
  if (v->capacity() > cap_before) {
    ++alloc_events_;
    MMX_OBS_COUNT("dsp.workspace.alloc_events", 1);
  }
  ++leased_;
  return v;
}

DspWorkspace::CvecLease DspWorkspace::cvec(std::size_t n) {
  return CvecLease(this, acquire(cpool_, cfree_, n));
}

DspWorkspace::RvecLease DspWorkspace::rvec(std::size_t n) {
  return RvecLease(this, acquire(rpool_, rfree_, n));
}

void DspWorkspace::release(Cvec* v) {
  cfree_.push_back(v);
  --leased_;
}

void DspWorkspace::release(Rvec* v) {
  rfree_.push_back(v);
  --leased_;
}

DspWorkspace& DspWorkspace::tls() {
  thread_local DspWorkspace ws;
  return ws;
}

}  // namespace mmx::dsp
