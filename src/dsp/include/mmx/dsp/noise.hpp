// Additive white Gaussian noise generation.
#pragma once

#include "mmx/common/rng.hpp"
#include "mmx/dsp/types.hpp"

namespace mmx::dsp {

/// Complex AWGN block with total mean power `power_lin` (split evenly between
/// I and Q).
Cvec awgn(std::size_t n, double power_lin, Rng& rng);

/// Fill `out` with AWGN of total mean power `power_lin` (no allocation).
/// Draw-for-draw identical to `awgn` at the same RNG state.
void awgn_into(std::span<Complex> out, double power_lin, Rng& rng);

/// Add AWGN of mean power `power_lin` to `x` in place.
void add_awgn(std::span<Complex> x, double power_lin, Rng& rng);

/// Add noise at `snr_db` below the measured mean power of `x`.
void add_awgn_snr(std::span<Complex> x, double snr_db, Rng& rng);

}  // namespace mmx::dsp
