// Integer-factor rate conversion with anti-alias / anti-image filtering.
//
// The AP captures wide chunks of the ISM band and decimates each FDM
// channel down to its own symbol-rate stream.
#pragma once

#include <cstddef>

#include "mmx/dsp/types.hpp"

namespace mmx::dsp {

/// Decimate by `factor` after a windowed-sinc anti-alias low-pass
/// (cutoff at 0.45 * new Nyquist). factor == 1 returns a copy.
Cvec decimate(std::span<const Complex> x, std::size_t factor, std::size_t taps = 63);

/// Zero-stuff upsample by `factor` followed by an anti-image low-pass and
/// gain restore. factor == 1 returns a copy.
Cvec upsample(std::span<const Complex> x, std::size_t factor, std::size_t taps = 63);

/// Frequency-shift a block by `offset_hz` (multiply by a complex
/// exponential) — used to centre an FDM channel before decimation.
Cvec frequency_shift(std::span<const Complex> x, double offset_hz, double sample_rate_hz);

/// Rational-factor resampling by L/M (upsample by L, anti-image/alias
/// filter, decimate by M). Output length ~= n * L / M. Needed when an
/// FDM channel's symbol rate is not an integer divisor of the SDR
/// capture rate (e.g. 64 Msps capture -> 12.5 MHz channel: L/M = 25/128).
Cvec resample_rational(std::span<const Complex> x, std::size_t up, std::size_t down,
                       std::size_t taps = 127);

}  // namespace mmx::dsp
