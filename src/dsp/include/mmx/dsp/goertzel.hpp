// Goertzel single-bin DFT.
//
// The FSK half of the joint ASK-FSK demodulator (paper §6.3) only needs
// the energy at two known tone frequencies per symbol; Goertzel computes
// that in O(N) per tone without a full FFT.
#pragma once

#include <cstddef>

#include "mmx/dsp/types.hpp"

namespace mmx::dsp {

/// Complex Goertzel: DFT coefficient of `x` at `freq_hz` (not normalized
/// by N). Works at arbitrary (non-bin-aligned) frequencies.
Complex goertzel(std::span<const Complex> x, double freq_hz, double sample_rate_hz);

/// Energy |X(f)|^2 / N^2 at `freq_hz` — a mean-power-like quantity
/// comparable across block lengths.
double goertzel_power(std::span<const Complex> x, double freq_hz, double sample_rate_hz);

/// Streaming Goertzel accumulator: feed samples, read power at the end.
class GoertzelBin {
 public:
  GoertzelBin(double freq_hz, double sample_rate_hz);
  void push(Complex x);
  /// DFT coefficient accumulated so far.
  Complex coefficient() const;
  /// |X|^2 / n^2 over samples seen so far (0 if none).
  double power() const;
  void reset();
  std::size_t count() const { return n_; }

 private:
  double w_;  // radians/sample
  Complex acc_{0.0, 0.0};
  double phase_ = 0.0;
  std::size_t n_ = 0;
};

}  // namespace mmx::dsp
