// Goertzel single-bin DFT.
//
// The FSK half of the joint ASK-FSK demodulator (paper §6.3) only needs
// the energy at two known tone frequencies per symbol; Goertzel computes
// that in O(N) per tone without a full FFT.
//
// Fast path: the correlation phasor e^{-jwn} is advanced by a complex
// rotator (`rot *= step`) instead of per-sample cos/sin, with periodic
// renormalization so rounding cannot accumulate into amplitude drift
// (docs/DSP_FASTPATH.md derives the bound). `GoertzelBank` sweeps
// several bins in a single pass over the block — the FSK discriminator
// reads both tone powers while the symbol is still in cache.
#pragma once

#include <cstddef>
#include <vector>

#include "mmx/dsp/types.hpp"

namespace mmx::dsp {

/// Complex Goertzel: DFT coefficient of `x` at `freq_hz` (not normalized
/// by N). Works at arbitrary (non-bin-aligned) frequencies.
Complex goertzel(std::span<const Complex> x, double freq_hz, double sample_rate_hz);

/// Energy |X(f)|^2 / N^2 at `freq_hz` — a mean-power-like quantity
/// comparable across block lengths.
double goertzel_power(std::span<const Complex> x, double freq_hz, double sample_rate_hz);

/// Streaming Goertzel accumulator: feed samples, read power at the end.
class GoertzelBin {
 public:
  GoertzelBin(double freq_hz, double sample_rate_hz);
  void push(Complex x);
  /// DFT coefficient accumulated so far.
  Complex coefficient() const;
  /// |X|^2 / n^2 over samples seen so far (0 if none).
  double power() const;
  void reset();
  std::size_t count() const { return n_; }

 private:
  Complex step_;           // e^{-jw}, fixed at construction
  Complex rot_{1.0, 0.0};  // e^{-jwn}, advanced per sample
  Complex acc_{0.0, 0.0};
  std::size_t until_renorm_;
  std::size_t n_ = 0;
};

/// Batched multi-bin Goertzel: measures the power at several fixed
/// frequencies in one pass over a block. The per-symbol FSK/joint
/// demodulators use a two-bin bank so each symbol is read once, not once
/// per tone.
class GoertzelBank {
 public:
  GoertzelBank(std::span<const double> freqs_hz, double sample_rate_hz);
  GoertzelBank(std::initializer_list<double> freqs_hz, double sample_rate_hz);

  std::size_t bins() const { return steps_.size(); }

  /// powers[i] = |X(f_i)|^2 / n^2 over `x` (0 for an empty block).
  /// `powers.size()` must be >= bins().
  void measure(std::span<const Complex> x, std::span<double> powers) const;

 private:
  std::vector<Complex> steps_;  // e^{-jw_i} per bin
};

}  // namespace mmx::dsp
