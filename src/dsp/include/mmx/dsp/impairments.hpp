// Receiver front-end impairments and their compensation.
//
// The AP's analog downconversion (sub-harmonic mixer into a direct-
// sampling baseband) introduces I/Q gain & phase imbalance and DC
// offset — the classic image and carrier-leak artifacts a USRP capture
// shows. The models below inject them; the blind compensator removes
// them, keeping the FSK discriminator's image rejection honest.
#pragma once

#include "mmx/dsp/types.hpp"

namespace mmx::dsp {

struct IqImbalance {
  double gain_db = 0.0;     ///< Q-rail gain error relative to I
  double phase_rad = 0.0;   ///< quadrature skew
};

/// Apply imbalance: y = alpha * x + beta * conj(x), with
/// alpha = (1 + g e^{j phi}) / 2, beta = (1 - g e^{j phi}) / 2.
Cvec apply_iq_imbalance(std::span<const Complex> x, const IqImbalance& imb);

/// Add a constant DC (carrier-leak) offset.
Cvec apply_dc_offset(std::span<const Complex> x, Complex offset);

/// Image rejection ratio [dB] implied by an imbalance: |alpha|^2/|beta|^2.
double image_rejection_db(const IqImbalance& imb);

/// Blind I/Q + DC compensator (Moseley-Slump style): estimates the DC
/// from the block mean and the image term from E[y^2] / E[|y|^2], then
/// inverts. One-shot, block-based.
class IqCompensator {
 public:
  /// Estimate the correction from a representative block.
  void estimate(std::span<const Complex> y);

  /// Apply the current correction.
  Cvec process(std::span<const Complex> y) const;

  /// Estimated interference-to-signal ratio of the image term (linear).
  double estimated_image_ratio() const;

  Complex dc() const { return dc_; }
  Complex w() const { return w_; }

 private:
  Complex dc_{0.0, 0.0};
  Complex w_{0.0, 0.0};  // image-cancellation weight: z = y' - w * conj(y')
};

}  // namespace mmx::dsp
