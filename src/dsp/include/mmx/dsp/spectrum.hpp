// Occupied-bandwidth and spectral-containment measurements.
//
// Regulators (and the FDM allocator) care where a transmission's power
// actually sits: the occupied bandwidth must fit inside the granted
// channel, guard bands included.
#pragma once

#include "mmx/dsp/types.hpp"

namespace mmx::dsp {

struct ObwResult {
  double low_hz;        ///< lower edge of the occupied band
  double high_hz;       ///< upper edge
  double bandwidth_hz;  ///< high - low
  double center_hz;     ///< power centroid
};

/// x%-occupied bandwidth (default 99%): the narrowest frequency interval
/// (by trimming equal power tails) containing `fraction` of the signal
/// power. Needs >= 64 samples.
ObwResult occupied_bandwidth(std::span<const Complex> x, double sample_rate_hz,
                             double fraction = 0.99);

/// Fraction of the signal power inside [low_hz, high_hz].
double power_in_band(std::span<const Complex> x, double sample_rate_hz, double low_hz,
                     double high_hz);

struct DetectedChannel {
  double center_hz;        ///< channel-grid centre within the capture
  double power_db;         ///< integrated channel power [dB, arbitrary ref]
  double above_floor_db;   ///< margin over the median-channel floor
};

/// Energy-detection band scan: split the capture's spectrum into a grid
/// of `channel_bw_hz` channels and report every channel whose integrated
/// power exceeds the median channel by `threshold_db`. This is the AP's
/// "who is transmitting right now" primitive (occupancy monitoring,
/// rogue-emitter detection).
std::vector<DetectedChannel> detect_active_channels(std::span<const Complex> x,
                                                    double sample_rate_hz,
                                                    double channel_bw_hz,
                                                    double threshold_db = 10.0);

}  // namespace mmx::dsp
