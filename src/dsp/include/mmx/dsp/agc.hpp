// Automatic gain control.
//
// The AP's SDR front end normalizes the wildly varying OTAM amplitudes
// (LoS vs blocked paths differ by 20-35 dB) into the ADC's useful range.
#pragma once

#include "mmx/dsp/types.hpp"

namespace mmx::dsp {

/// First-order feedback AGC driving the block RMS toward a target level.
class Agc {
 public:
  /// `target_rms` is the desired output RMS; `alpha` in (0, 1] is the
  /// tracking rate (1 = instant).
  Agc(double target_rms = 1.0, double alpha = 0.05);

  Complex process(Complex x);
  Cvec process(std::span<const Complex> x);

  double gain() const { return gain_lin_; }
  void reset();

 private:
  double target_rms_;
  double alpha_;
  double gain_lin_ = 1.0;
  double level_ = 0.0;  // tracked envelope estimate
};

}  // namespace mmx::dsp
