// Core sample types for the mmX baseband DSP library.
//
// All signal processing operates on complex baseband samples (`Cvec`).
// Real passband signals only exist conceptually; the simulator works at
// complex envelope level, which is what the USRP-based AP in the paper
// captures after downconversion.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace mmx::dsp {

using Complex = std::complex<double>;
using Cvec = std::vector<Complex>;
using Rvec = std::vector<double>;

/// Mean power (|x|^2 averaged) of a block. Empty input -> 0.
double mean_power(std::span<const Complex> x);

/// Root-mean-square magnitude of a block. Empty input -> 0.
double rms(std::span<const Complex> x);

/// Scale a signal in place so its mean power becomes `target_power_lin`.
/// A zero signal is left untouched.
void set_mean_power(std::span<Complex> x, double target_power_lin);

/// Element-wise a += b. Sizes must match.
void add_into(std::span<Complex> a, std::span<const Complex> b);

/// Magnitudes of a complex block.
Rvec magnitudes(std::span<const Complex> x);

}  // namespace mmx::dsp
