// Core sample types for the mmX baseband DSP library.
//
// All signal processing operates on complex baseband samples (`Cvec`).
// Real passband signals only exist conceptually; the simulator works at
// complex envelope level, which is what the USRP-based AP in the paper
// captures after downconversion.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace mmx::dsp {

using Complex = std::complex<double>;
using Cvec = std::vector<Complex>;
using Rvec = std::vector<double>;

/// Finite-math complex multiply for per-sample loops.
///
/// `std::complex` operator* compiles to the `__muldc3` libcall (C99 Annex G
/// requires inf/NaN fixups), which costs a function call per sample. This
/// inline form performs the identical four-multiply/two-add sequence that
/// __muldc3 uses on its finite path, so results are bit-identical for the
/// finite operands DSP kernels produce — it just stays inlined.
inline Complex cmul(const Complex& a, const Complex& b) {
  return Complex{a.real() * b.real() - a.imag() * b.imag(),
                 a.real() * b.imag() + a.imag() * b.real()};
}

/// Mean power (|x|^2 averaged) of a block. Empty input -> 0.
double mean_power(std::span<const Complex> x);

/// Root-mean-square magnitude of a block. Empty input -> 0.
double rms(std::span<const Complex> x);

/// Scale a signal in place so its mean power becomes `target_power_lin`.
/// A zero signal is left untouched.
void set_mean_power(std::span<Complex> x, double target_power_lin);

/// Element-wise a += b. Sizes must match.
void add_into(std::span<Complex> a, std::span<const Complex> b);

/// Magnitudes of a complex block.
Rvec magnitudes(std::span<const Complex> x);

}  // namespace mmx::dsp
