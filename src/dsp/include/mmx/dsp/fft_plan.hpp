// Cached radix-2 FFT plan: per-size twiddle factors and bit-reversal
// table, computed once per thread and reused for every transform of that
// size.
//
// `fft_core` used to rebuild its twiddles on every call via the
// `w *= wlen` recurrence — one complex multiply of setup per butterfly
// plus the accumulated rounding of the recurrence chain. A plan spends
// the transcendentals once (directly per twiddle, so each factor is
// correctly rounded) and the transform itself touches only tables.
// `fft_inplace`/`ifft_inplace` route through the per-thread plan cache
// transparently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mmx/dsp/types.hpp"

namespace mmx::dsp {

class FftPlan {
 public:
  /// Build a plan for transforms of `n` points. `n` must be a power of
  /// two (throws std::invalid_argument otherwise).
  explicit FftPlan(std::size_t n);

  /// In-place forward DFT of exactly `size()` points.
  void forward(std::span<Complex> x) const;
  /// In-place inverse DFT (includes the 1/N normalization).
  void inverse(std::span<Complex> x) const;

  std::size_t size() const { return n_; }

 private:
  void transform(std::span<Complex> x, bool inverse) const;

  std::size_t n_;
  std::vector<std::uint32_t> bitrev_;  // bitrev_[i] = bit-reversed index of i
  Cvec twiddle_;  // forward twiddles, stages concatenated (n - 1 entries)
};

/// This thread's cached plan for size `n` (built on first use). The
/// cache is thread-local, so plans are shared by every kernel on the
/// thread but never contended across SweepRunner workers.
const FftPlan& fft_plan(std::size_t n);

}  // namespace mmx::dsp
