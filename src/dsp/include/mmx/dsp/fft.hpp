// Radix-2 FFT and spectral helpers.
//
// The AP separates FDM channels and TMA harmonics in the frequency
// domain; this in-place iterative FFT is the workhorse for that and for
// the FSK discriminator's spectral view.
#pragma once

#include <cstddef>

#include "mmx/dsp/types.hpp"
#include "mmx/dsp/window.hpp"

namespace mmx::dsp {

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// In-place forward FFT. Size must be a power of two.
void fft_inplace(std::span<Complex> x);

/// In-place inverse FFT (includes the 1/N normalization).
void ifft_inplace(std::span<Complex> x);

/// Out-of-place convenience wrappers; input is zero-padded to a power of
/// two if necessary.
Cvec fft(std::span<const Complex> x);
Cvec ifft(std::span<const Complex> x);

/// Power spectrum |FFT|^2 / N with an optional analysis window; bin k
/// corresponds to frequency k*fs/N for k < N/2 and (k-N)*fs/N above.
Rvec power_spectrum(std::span<const Complex> x, WindowKind window = WindowKind::kHann);

/// Frequency [Hz] of FFT bin `k` given `n` bins at sample rate `fs`
/// (negative frequencies for k >= n/2).
double bin_frequency(std::size_t k, std::size_t n, double sample_rate_hz);

/// Index of the strongest bin of a power spectrum.
std::size_t peak_bin(std::span<const double> spectrum);

/// Estimate the dominant tone frequency of a block by peak-picking the
/// spectrum with 3-point parabolic interpolation. Requires at least 8
/// samples.
double estimate_tone_frequency(std::span<const Complex> x, double sample_rate_hz);

}  // namespace mmx::dsp
