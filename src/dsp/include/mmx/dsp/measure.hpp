// Link-quality measurement helpers.
#pragma once

#include <span>

#include "mmx/dsp/types.hpp"

namespace mmx::dsp {

/// SNR [dB] of `received` against a known `reference` block, after fitting
/// a single complex gain (so absolute level and phase don't matter).
/// Returns a clamped 200 dB for a numerically perfect match.
double estimate_snr_db(std::span<const Complex> received, std::span<const Complex> reference);

/// RMS error-vector magnitude (linear, not percent) against a reference.
double evm_rms(std::span<const Complex> received, std::span<const Complex> reference);

}  // namespace mmx::dsp
