// FIR filter design (windowed-sinc) and streaming application.
//
// Used by the AP's baseband processor for channelization, envelope
// smoothing and anti-alias filtering before decimation. The coupled-line
// microstrip filter on the AP front end (paper §8.2) is modelled in
// `mmx::rf`; this file is the *digital* filtering substrate.
#pragma once

#include <cstddef>

#include "mmx/dsp/types.hpp"
#include "mmx/dsp/window.hpp"
#include "mmx/dsp/workspace.hpp"

namespace mmx::dsp {

/// Design a linear-phase low-pass FIR with the windowed-sinc method.
/// `cutoff_hz` is the -6 dB edge; `taps` must be odd so there is a true
/// centre tap (group delay = (taps-1)/2 samples).
Rvec design_lowpass(double sample_rate_hz, double cutoff_hz, std::size_t taps,
                    WindowKind window = WindowKind::kHamming);

/// Design a band-pass FIR centred on [low_hz, high_hz] (positive
/// frequencies of the underlying real prototype).
Rvec design_bandpass(double sample_rate_hz, double low_hz, double high_hz, std::size_t taps,
                     WindowKind window = WindowKind::kHamming);

/// Streaming FIR filter with persistent state; safe to feed sample-by-
/// sample or in blocks. Real taps applied to complex samples.
class FirFilter {
 public:
  explicit FirFilter(Rvec taps);

  Complex process(Complex x);
  Cvec process(std::span<const Complex> x);

  /// Block form: filter `x` into `out` (same length; `out` may alias
  /// `x`). Scratch comes from `ws`, so a warm workspace makes this
  /// allocation-free. Bit-identical to feeding process(Complex) sample
  /// by sample — the inner sum runs in the same tap order.
  void process_into(std::span<const Complex> x, std::span<Complex> out, DspWorkspace& ws);

  void reset();

  std::size_t num_taps() const { return taps_.size(); }
  /// Group delay of a symmetric (linear-phase) design, in samples.
  std::size_t group_delay() const { return (taps_.size() - 1) / 2; }
  const Rvec& taps() const { return taps_; }

  /// Complex frequency response at `freq_hz` for the given sample rate.
  Complex frequency_response(double freq_hz, double sample_rate_hz) const;

 private:
  Rvec taps_;
  Cvec delay_;          // circular delay line
  std::size_t head_ = 0;
};

/// Simple boxcar moving average over `len` samples (streaming).
class MovingAverage {
 public:
  explicit MovingAverage(std::size_t len);
  double process(double x);
  void reset();
  std::size_t length() const { return buf_.size(); }

 private:
  Rvec buf_;
  std::size_t head_ = 0;
  std::size_t filled_ = 0;
  double sum_ = 0.0;
};

}  // namespace mmx::dsp
