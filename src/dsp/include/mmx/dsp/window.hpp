// Window functions for FIR design and spectral analysis.
#pragma once

#include <cstddef>

#include "mmx/dsp/types.hpp"

namespace mmx::dsp {

enum class WindowKind { kRect, kHann, kHamming, kBlackman };

/// Generate an n-point symmetric window of the given kind.
Rvec make_window(WindowKind kind, std::size_t n);

/// Apply a window in place (sizes must match).
void apply_window(std::span<Complex> x, std::span<const double> w);

}  // namespace mmx::dsp
