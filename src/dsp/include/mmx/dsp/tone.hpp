// Numerically controlled oscillator and tone synthesis.
//
// The mmX node's entire transmitter is "a sine wave steered between two
// beams" (paper §5.1), so phase-continuous tone generation is the
// fundamental transmit primitive of the whole simulator.
#pragma once

#include <cstddef>

#include "mmx/dsp/types.hpp"

namespace mmx::dsp {

/// Phase-continuous complex oscillator.
///
/// Frequency may be retuned at any sample boundary without a phase jump —
/// exactly how the node's VCO behaves when the controller nudges the
/// tuning voltage for FSK (paper §6.3).
class Nco {
 public:
  /// `sample_rate_hz` is the complex baseband sample rate. `freq_hz` is the
  /// (possibly negative) baseband offset frequency.
  Nco(double sample_rate_hz, double freq_hz = 0.0);

  /// Change frequency; takes effect from the next sample, phase-continuous.
  void set_frequency(double freq_hz);
  double frequency() const { return freq_hz_; }
  double phase() const { return phase_; }
  void set_phase(double rad) { phase_ = rad; }

  /// Produce the next sample (unit amplitude) and advance the phase.
  Complex next();

  /// Produce `n` samples into a new vector.
  Cvec generate(std::size_t n);

  double sample_rate() const { return sample_rate_hz_; }

 private:
  double sample_rate_hz_;
  double freq_hz_;
  double phase_ = 0.0;  // radians
  double step_ = 0.0;   // radians per sample
};

/// One-shot unit tone: n samples of exp(j 2 pi f t) at the given start phase.
Cvec tone(double sample_rate_hz, double freq_hz, std::size_t n, double phase0 = 0.0);

/// Linear chirp from f0 to f1 over n samples (used in tests as a
/// wideband probe).
Cvec chirp(double sample_rate_hz, double f0_hz, double f1_hz, std::size_t n);

}  // namespace mmx::dsp
