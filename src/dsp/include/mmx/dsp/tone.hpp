// Numerically controlled oscillator and tone synthesis.
//
// The mmX node's entire transmitter is "a sine wave steered between two
// beams" (paper §5.1), so phase-continuous tone generation is the
// fundamental transmit primitive of the whole simulator.
//
// Fast path: samples come from a unit phasor advanced by one complex
// multiply per sample. The true phase is still tracked (cheap add +
// conditional wrap), and the phasor is resynchronized to it exactly every
// few hundred samples and at every retune/set_phase, so rounding drift is
// bounded and the `phase()` contract is unchanged (docs/DSP_FASTPATH.md).
#pragma once

#include <cstddef>

#include "mmx/common/units.hpp"
#include "mmx/dsp/types.hpp"

namespace mmx::dsp {

/// Wrap `a` into (-pi, pi] given it left the range by at most one step of
/// magnitude <= pi — a branch instead of wrap_angle's fmod on the
/// per-sample path.
inline double wrap_step(double a) {
  if (a > kPi) return a - kTwoPi;
  if (a <= -kPi) return a + kTwoPi;
  return a;
}

/// Phase-continuous complex oscillator.
///
/// Frequency may be retuned at any sample boundary without a phase jump —
/// exactly how the node's VCO behaves when the controller nudges the
/// tuning voltage for FSK (paper §6.3).
class Nco {
 public:
  /// `sample_rate_hz` is the complex baseband sample rate. `freq_hz` is the
  /// (possibly negative) baseband offset frequency.
  Nco(double sample_rate_hz, double freq_hz = 0.0);

  /// Change frequency; takes effect from the next sample, phase-continuous.
  /// Retuning to the current frequency is free.
  void set_frequency(double freq_hz);
  double frequency() const { return freq_hz_; }
  double phase() const { return phase_; }
  void set_phase(double rad);

  /// Produce the next sample (unit amplitude) and advance the phase.
  /// Inline: called once per sample from synthesis loops in other TUs.
  Complex next() {
    const Complex s = phasor_;
    phasor_ = cmul(phasor_, step_phasor_);
    phase_ = wrap_step(phase_ + step_);
    if (--until_resync_ == 0) resync();
    return s;
  }

  /// Produce `n` samples into a new vector.
  Cvec generate(std::size_t n);

  /// Fill `out` with the next out.size() samples (no allocation).
  /// Bit-identical to calling next() out.size() times, but batched so the
  /// oscillator state stays in registers between resyncs.
  void generate_into(std::span<Complex> out);

  /// Fill `out` with the next out.size() samples, each multiplied by
  /// `gain` — the per-symbol shape of the OTAM synthesizer. Advances the
  /// oscillator exactly like generate_into.
  void modulate_into(std::span<Complex> out, Complex gain);

  double sample_rate() const { return sample_rate_hz_; }

 private:
  static constexpr std::size_t kResyncInterval = 256;

  void tune(double freq_hz);
  void resync();  // phasor_ = e^{j phase_}, exactly

  double sample_rate_hz_;
  double freq_hz_ = 0.0;
  double phase_ = 0.0;  // radians, always the authoritative state
  double step_ = 0.0;   // radians per sample
  Complex phasor_{1.0, 0.0};       // e^{j phase_} up to bounded drift
  Complex step_phasor_{1.0, 0.0};  // e^{j step_}
  std::size_t until_resync_ = kResyncInterval;
};

/// One-shot unit tone: n samples of exp(j 2 pi f t) at the given start phase.
Cvec tone(double sample_rate_hz, double freq_hz, std::size_t n, double phase0 = 0.0);

/// Linear chirp from f0 to f1 over n samples (used in tests as a
/// wideband probe).
Cvec chirp(double sample_rate_hz, double f0_hz, double f1_hz, std::size_t n);

}  // namespace mmx::dsp
