// Per-thread scratch arena for the DSP fast path.
//
// The demodulation pipeline used to allocate a fresh vector at every
// stage (`otam_synthesize`, `FirFilter::process`, `awgn`, the envelope
// and tone-power statistics). At the paper's operating point — one AP
// CPU demodulating thousands of node streams in real time — that
// allocator traffic dominates once the per-sample math is cheap. A
// `DspWorkspace` owns a pool of reusable buffers: a kernel leases one,
// sizes it, and returns it on scope exit with its capacity intact, so a
// steady-state loop performs zero heap allocations after warm-up.
//
// Buffers are leased RAII-style and returned in any order. The pool is
// not thread-safe by design; each thread uses its own workspace
// (`DspWorkspace::tls()`), which also keeps SweepRunner trials
// independent and bit-identical at any thread count.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "mmx/dsp/types.hpp"

namespace mmx::dsp {

class DspWorkspace {
 public:
  DspWorkspace() = default;
  DspWorkspace(const DspWorkspace&) = delete;
  DspWorkspace& operator=(const DspWorkspace&) = delete;

  /// RAII lease of a pooled vector. Move-only; returns the buffer to the
  /// workspace on destruction. The lease must not outlive the workspace.
  template <typename Vec>
  class Lease {
   public:
    Lease(Lease&& o) noexcept : ws_(o.ws_), v_(o.v_) { o.v_ = nullptr; }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() {
      if (v_ != nullptr) ws_->release(v_);
    }

    Vec& operator*() const { return *v_; }
    Vec* operator->() const { return v_; }

   private:
    friend class DspWorkspace;
    Lease(DspWorkspace* ws, Vec* v) : ws_(ws), v_(v) {}
    DspWorkspace* ws_;
    Vec* v_;
  };

  using CvecLease = Lease<Cvec>;
  using RvecLease = Lease<Rvec>;

  /// Lease a complex buffer sized to exactly `n` elements. Newly exposed
  /// elements are value-initialized (vector::resize semantics); capacity
  /// from earlier leases is reused, so a warm workspace allocates nothing.
  CvecLease cvec(std::size_t n);
  /// Same for a real buffer.
  RvecLease rvec(std::size_t n);

  /// Number of heap allocations the pool has performed (new buffers plus
  /// capacity growths). Stable across two identical runs = zero-alloc
  /// steady state; the pipeline tests pin exactly that.
  std::size_t alloc_events() const { return alloc_events_; }
  /// Buffers currently leased out (diagnostic; 0 between pipeline calls).
  std::size_t leased() const { return leased_; }

  /// This thread's workspace (function-local thread_local).
  static DspWorkspace& tls();

 private:
  template <typename Vec>
  Vec* acquire(std::vector<std::unique_ptr<Vec>>& pool, std::vector<Vec*>& free_list,
               std::size_t n);
  void release(Cvec* v);
  void release(Rvec* v);

  std::vector<std::unique_ptr<Cvec>> cpool_;
  std::vector<Cvec*> cfree_;
  std::vector<std::unique_ptr<Rvec>> rpool_;
  std::vector<Rvec*> rfree_;
  std::size_t alloc_events_ = 0;
  std::size_t leased_ = 0;
};

}  // namespace mmx::dsp
