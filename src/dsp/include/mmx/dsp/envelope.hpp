// Envelope detection for ASK demodulation.
//
// The AP decodes OTAM's over-the-air ASK by tracking the received carrier
// amplitude (paper Fig. 9a). At complex baseband the envelope is |x[n]|;
// a smoothing filter suppresses noise within a symbol.
#pragma once

#include <cstddef>

#include "mmx/dsp/types.hpp"

namespace mmx::dsp {

/// Instantaneous envelope |x[n]| smoothed with a boxcar of `smooth_len`
/// samples (1 = no smoothing).
Rvec envelope(std::span<const Complex> x, std::size_t smooth_len = 1);

/// In-place form of `envelope`: writes into `out` (out.size() == x.size()).
void envelope_into(std::span<const Complex> x, std::span<double> out,
                   std::size_t smooth_len = 1);

/// Mean envelope per symbol: splits `x` into consecutive symbols of
/// `samples_per_symbol` and returns the average |x| in (a centred window
/// of) each. `guard_frac` in [0, 0.5) trims that fraction from both ends
/// of the symbol to avoid switch-transition samples.
Rvec symbol_envelopes(std::span<const Complex> x, std::size_t samples_per_symbol,
                      double guard_frac = 0.1);

/// Span form of `symbol_envelopes`: writes one value per full symbol into
/// `out` (out.size() == x.size() / samples_per_symbol). Bit-identical to
/// the allocating wrapper.
void symbol_envelopes_into(std::span<const Complex> x, std::size_t samples_per_symbol,
                           double guard_frac, std::span<double> out);

}  // namespace mmx::dsp
