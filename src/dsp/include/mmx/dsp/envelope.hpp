// Envelope detection for ASK demodulation.
//
// The AP decodes OTAM's over-the-air ASK by tracking the received carrier
// amplitude (paper Fig. 9a). At complex baseband the envelope is |x[n]|;
// a smoothing filter suppresses noise within a symbol.
#pragma once

#include <cstddef>

#include "mmx/dsp/types.hpp"

namespace mmx::dsp {

/// Instantaneous envelope |x[n]| smoothed with a boxcar of `smooth_len`
/// samples (1 = no smoothing).
Rvec envelope(std::span<const Complex> x, std::size_t smooth_len = 1);

/// Mean envelope per symbol: splits `x` into consecutive symbols of
/// `samples_per_symbol` and returns the average |x| in (a centred window
/// of) each. `guard_frac` in [0, 0.5) trims that fraction from both ends
/// of the symbol to avoid switch-transition samples.
Rvec symbol_envelopes(std::span<const Complex> x, std::size_t samples_per_symbol,
                      double guard_frac = 0.1);

}  // namespace mmx::dsp
