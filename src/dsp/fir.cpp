#include "mmx/dsp/fir.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::dsp {
namespace {

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  return std::sin(kPi * x) / (kPi * x);
}

void validate_design(double sample_rate_hz, std::size_t taps) {
  if (sample_rate_hz <= 0.0) throw std::invalid_argument("FIR design: sample rate must be > 0");
  if (taps < 3 || taps % 2 == 0)
    throw std::invalid_argument("FIR design: taps must be odd and >= 3");
}

}  // namespace

Rvec design_lowpass(double sample_rate_hz, double cutoff_hz, std::size_t taps, WindowKind window) {
  validate_design(sample_rate_hz, taps);
  if (cutoff_hz <= 0.0 || cutoff_hz >= sample_rate_hz / 2.0)
    throw std::invalid_argument("design_lowpass: cutoff must be in (0, fs/2)");
  const double fc = cutoff_hz / sample_rate_hz;  // normalized (cycles/sample)
  const Rvec w = make_window(window, taps);
  const double mid = static_cast<double>(taps - 1) / 2.0;
  Rvec h(taps);
  double gain = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double t = static_cast<double>(i) - mid;
    h[i] = 2.0 * fc * sinc(2.0 * fc * t) * w[i];
    gain += h[i];
  }
  // Normalize DC gain to exactly 1.
  for (double& v : h) v /= gain;
  return h;
}

Rvec design_bandpass(double sample_rate_hz, double low_hz, double high_hz, std::size_t taps,
                     WindowKind window) {
  validate_design(sample_rate_hz, taps);
  if (!(0.0 < low_hz && low_hz < high_hz && high_hz < sample_rate_hz / 2.0))
    throw std::invalid_argument("design_bandpass: need 0 < low < high < fs/2");
  // Band-pass = difference of two low-pass prototypes, then normalize the
  // response at the band centre to unity.
  const double f1 = low_hz / sample_rate_hz;
  const double f2 = high_hz / sample_rate_hz;
  const Rvec w = make_window(window, taps);
  const double mid = static_cast<double>(taps - 1) / 2.0;
  Rvec h(taps);
  for (std::size_t i = 0; i < taps; ++i) {
    const double t = static_cast<double>(i) - mid;
    h[i] = (2.0 * f2 * sinc(2.0 * f2 * t) - 2.0 * f1 * sinc(2.0 * f1 * t)) * w[i];
  }
  // Normalize at centre frequency.
  const double fc = 0.5 * (low_hz + high_hz);
  Complex resp{0.0, 0.0};
  for (std::size_t i = 0; i < taps; ++i) {
    const double ph = -kTwoPi * fc / sample_rate_hz * static_cast<double>(i);
    resp += h[i] * Complex{std::cos(ph), std::sin(ph)};  // mmx-lint: allow(trig-per-sample) -- per-tap design-time evaluation, not a sample loop
  }
  const double mag = std::abs(resp);
  if (mag > 0.0)
    for (double& v : h) v /= mag;
  return h;
}

FirFilter::FirFilter(Rvec taps) : taps_(std::move(taps)), delay_(taps_.size(), Complex{}) {
  if (taps_.empty()) throw std::invalid_argument("FirFilter: empty taps");
}

Complex FirFilter::process(Complex x) {
  delay_[head_] = x;
  Complex acc{0.0, 0.0};
  std::size_t idx = head_;
  for (const double t : taps_) {
    acc += t * delay_[idx];
    idx = (idx == 0) ? delay_.size() - 1 : idx - 1;
  }
  head_ = (head_ + 1) % delay_.size();
  return acc;
}

Cvec FirFilter::process(std::span<const Complex> x) {
  Cvec out(x.size());
  process_into(x, out, DspWorkspace::tls());
  return out;
}

void FirFilter::process_into(std::span<const Complex> x, std::span<Complex> out,
                             DspWorkspace& ws) {
  if (out.size() != x.size())
    throw std::invalid_argument("FirFilter::process_into: size mismatch");
  const std::size_t taps = taps_.size();
  const std::size_t hist = taps - 1;
  // Lay [history | block] out contiguously so the inner sum is a straight
  // dot product — no per-tap ring modulo. Tap order matches the
  // single-sample path exactly, so outputs are bit-identical to it.
  auto scratch = ws.cvec(hist + x.size());
  Cvec& scr = *scratch;
  for (std::size_t i = 0; i < hist; ++i) scr[i] = delay_[(head_ + 1 + i) % taps];
  std::copy(x.begin(), x.end(), scr.begin() + hist);
  const double* tp = taps_.data();
  for (std::size_t i = 0; i < x.size(); ++i) {
    const Complex* newest = scr.data() + hist + i;
    Complex acc{0.0, 0.0};
    for (std::size_t k = 0; k < taps; ++k) acc += tp[k] * *(newest - k);
    out[i] = acc;
  }
  // Re-seed the ring with the last `hist` inputs (newest at slot hist-1,
  // next write at head_ = taps-1) — the layout the sample path expects.
  for (std::size_t i = 0; i < hist; ++i) delay_[i] = scr[x.size() + i];
  head_ = taps - 1;
}

void FirFilter::reset() {
  std::fill(delay_.begin(), delay_.end(), Complex{});
  head_ = 0;
}

Complex FirFilter::frequency_response(double freq_hz, double sample_rate_hz) const {
  Complex acc{0.0, 0.0};
  for (std::size_t i = 0; i < taps_.size(); ++i) {
    const double ph = -kTwoPi * freq_hz / sample_rate_hz * static_cast<double>(i);
    acc += taps_[i] * Complex{std::cos(ph), std::sin(ph)};  // mmx-lint: allow(trig-per-sample) -- per-tap analysis helper, not a sample loop
  }
  return acc;
}

MovingAverage::MovingAverage(std::size_t len) : buf_(len, 0.0) {
  if (len == 0) throw std::invalid_argument("MovingAverage: length must be > 0");
}

double MovingAverage::process(double x) {
  sum_ -= buf_[head_];
  buf_[head_] = x;
  sum_ += x;
  head_ = (head_ + 1) % buf_.size();
  if (filled_ < buf_.size()) ++filled_;
  return sum_ / static_cast<double>(filled_);
}

void MovingAverage::reset() {
  std::fill(buf_.begin(), buf_.end(), 0.0);
  head_ = 0;
  filled_ = 0;
  sum_ = 0.0;
}

}  // namespace mmx::dsp
