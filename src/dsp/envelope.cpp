#include "mmx/dsp/envelope.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/dsp/fir.hpp"

namespace mmx::dsp {

void envelope_into(std::span<const Complex> x, std::span<double> out, std::size_t smooth_len) {
  if (smooth_len == 0) throw std::invalid_argument("envelope: smooth_len must be > 0");
  if (out.size() != x.size()) throw std::invalid_argument("envelope_into: size mismatch");
  MovingAverage ma(smooth_len);
  // sqrt(|x|^2) instead of std::abs: abs on complex is a hypot libcall
  // (careful about overflow near DBL_MAX); baseband samples are O(1), so
  // the direct form is safe and differs by at most ~1 ulp.
  for (std::size_t i = 0; i < x.size(); ++i)
    out[i] = ma.process(std::sqrt(std::norm(x[i])));
}

Rvec envelope(std::span<const Complex> x, std::size_t smooth_len) {
  Rvec env(x.size());
  envelope_into(x, env, smooth_len);
  return env;
}

void symbol_envelopes_into(std::span<const Complex> x, std::size_t samples_per_symbol,
                           double guard_frac, std::span<double> out) {
  if (samples_per_symbol == 0)
    throw std::invalid_argument("symbol_envelopes: samples_per_symbol must be > 0");
  if (guard_frac < 0.0 || guard_frac >= 0.5)
    throw std::invalid_argument("symbol_envelopes: guard_frac must be in [0, 0.5)");
  const std::size_t n_sym = x.size() / samples_per_symbol;
  if (out.size() != n_sym)
    throw std::invalid_argument("symbol_envelopes_into: out must hold one value per symbol");
  const auto guard = static_cast<std::size_t>(guard_frac * static_cast<double>(samples_per_symbol));
  for (std::size_t s = 0; s < n_sym; ++s) {
    const std::size_t begin = s * samples_per_symbol + guard;
    const std::size_t end = (s + 1) * samples_per_symbol - guard;
    double acc = 0.0;
    // sqrt(norm) rather than the hypot-based std::abs — see envelope_into.
    for (std::size_t i = begin; i < end; ++i) acc += std::sqrt(std::norm(x[i]));
    out[s] = acc / static_cast<double>(end - begin);
  }
}

Rvec symbol_envelopes(std::span<const Complex> x, std::size_t samples_per_symbol,
                      double guard_frac) {
  if (samples_per_symbol == 0)
    throw std::invalid_argument("symbol_envelopes: samples_per_symbol must be > 0");
  Rvec out(x.size() / samples_per_symbol, 0.0);
  symbol_envelopes_into(x, samples_per_symbol, guard_frac, out);
  return out;
}

}  // namespace mmx::dsp
