#include "mmx/dsp/envelope.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/dsp/fir.hpp"

namespace mmx::dsp {

Rvec envelope(std::span<const Complex> x, std::size_t smooth_len) {
  if (smooth_len == 0) throw std::invalid_argument("envelope: smooth_len must be > 0");
  Rvec env(x.size());
  MovingAverage ma(smooth_len);
  for (std::size_t i = 0; i < x.size(); ++i) env[i] = ma.process(std::abs(x[i]));
  return env;
}

Rvec symbol_envelopes(std::span<const Complex> x, std::size_t samples_per_symbol,
                      double guard_frac) {
  if (samples_per_symbol == 0)
    throw std::invalid_argument("symbol_envelopes: samples_per_symbol must be > 0");
  if (guard_frac < 0.0 || guard_frac >= 0.5)
    throw std::invalid_argument("symbol_envelopes: guard_frac must be in [0, 0.5)");
  const std::size_t n_sym = x.size() / samples_per_symbol;
  const auto guard = static_cast<std::size_t>(guard_frac * static_cast<double>(samples_per_symbol));
  Rvec out(n_sym, 0.0);
  for (std::size_t s = 0; s < n_sym; ++s) {
    const std::size_t begin = s * samples_per_symbol + guard;
    const std::size_t end = (s + 1) * samples_per_symbol - guard;
    double acc = 0.0;
    for (std::size_t i = begin; i < end; ++i) acc += std::abs(x[i]);
    out[s] = acc / static_cast<double>(end - begin);
  }
  return out;
}

}  // namespace mmx::dsp
