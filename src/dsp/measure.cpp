#include "mmx/dsp/types.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"
#include "mmx/dsp/measure.hpp"

namespace mmx::dsp {

double mean_power(std::span<const Complex> x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (const Complex& s : x) acc += std::norm(s);
  return acc / static_cast<double>(x.size());
}

double rms(std::span<const Complex> x) { return std::sqrt(mean_power(x)); }

void set_mean_power(std::span<Complex> x, double target_power_lin) {
  const double p = mean_power(x);
  if (p == 0.0) return;
  const double g = std::sqrt(target_power_lin / p);
  for (Complex& s : x) s *= g;
}

void add_into(std::span<Complex> a, std::span<const Complex> b) {
  if (a.size() != b.size()) throw std::invalid_argument("add_into: size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

Rvec magnitudes(std::span<const Complex> x) {
  Rvec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = std::abs(x[i]);
  return out;
}

double estimate_snr_db(std::span<const Complex> received, std::span<const Complex> reference) {
  if (received.size() != reference.size() || received.empty())
    throw std::invalid_argument("estimate_snr_db: blocks must be equal-sized and non-empty");
  // Least-squares complex gain aligning the reference to the received block,
  // then SNR = |g.ref|^2 / |rx - g.ref|^2.
  Complex num{0.0, 0.0};
  double den = 0.0;
  for (std::size_t i = 0; i < received.size(); ++i) {
    num += received[i] * std::conj(reference[i]);
    den += std::norm(reference[i]);
  }
  if (den == 0.0) throw std::invalid_argument("estimate_snr_db: zero reference");
  const Complex g = num / den;
  double sig = 0.0;
  double err = 0.0;
  for (std::size_t i = 0; i < received.size(); ++i) {
    const Complex fit = g * reference[i];
    sig += std::norm(fit);
    err += std::norm(received[i] - fit);
  }
  if (err == 0.0) return 200.0;  // numerically noiseless; clamp
  return lin_to_db(sig / err);
}

double evm_rms(std::span<const Complex> received, std::span<const Complex> reference) {
  if (received.size() != reference.size() || received.empty())
    throw std::invalid_argument("evm_rms: blocks must be equal-sized and non-empty");
  double err = 0.0;
  double ref = 0.0;
  for (std::size_t i = 0; i < received.size(); ++i) {
    err += std::norm(received[i] - reference[i]);
    ref += std::norm(reference[i]);
  }
  if (ref == 0.0) throw std::invalid_argument("evm_rms: zero reference");
  return std::sqrt(err / ref);
}

}  // namespace mmx::dsp
