#include "mmx/dsp/fft.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"
#include "mmx/dsp/fft_plan.hpp"

namespace mmx::dsp {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(std::span<Complex> x) { fft_plan(x.size()).forward(x); }
void ifft_inplace(std::span<Complex> x) { fft_plan(x.size()).inverse(x); }

Cvec fft(std::span<const Complex> x) {
  Cvec out(x.begin(), x.end());
  out.resize(next_pow2(std::max<std::size_t>(1, out.size())), Complex{});
  fft_inplace(out);
  return out;
}

Cvec ifft(std::span<const Complex> x) {
  Cvec out(x.begin(), x.end());
  out.resize(next_pow2(std::max<std::size_t>(1, out.size())), Complex{});
  ifft_inplace(out);
  return out;
}

Rvec power_spectrum(std::span<const Complex> x, WindowKind window) {
  Cvec buf(x.begin(), x.end());
  const Rvec w = make_window(window, buf.size());
  apply_window(buf, w);
  buf.resize(next_pow2(std::max<std::size_t>(1, buf.size())), Complex{});
  fft_inplace(buf);
  Rvec p(buf.size());
  const double inv_n = 1.0 / static_cast<double>(buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) p[i] = std::norm(buf[i]) * inv_n;
  return p;
}

double bin_frequency(std::size_t k, std::size_t n, double sample_rate_hz) {
  if (n == 0) throw std::invalid_argument("bin_frequency: n must be > 0");
  const double kk = (k < n / 2) ? static_cast<double>(k)
                                : static_cast<double>(k) - static_cast<double>(n);
  return kk * sample_rate_hz / static_cast<double>(n);
}

std::size_t peak_bin(std::span<const double> spectrum) {
  if (spectrum.empty()) throw std::invalid_argument("peak_bin: empty spectrum");
  return static_cast<std::size_t>(
      std::distance(spectrum.begin(), std::max_element(spectrum.begin(), spectrum.end())));
}

double estimate_tone_frequency(std::span<const Complex> x, double sample_rate_hz) {
  if (x.size() < 8) throw std::invalid_argument("estimate_tone_frequency: need >= 8 samples");
  const Rvec p = power_spectrum(x);
  const std::size_t n = p.size();
  const std::size_t k = peak_bin(p);
  // 3-point parabolic interpolation on log power (wraps circularly).
  const double pl = std::log(p[(k + n - 1) % n] + 1e-300);
  const double pc = std::log(p[k] + 1e-300);
  const double pr = std::log(p[(k + 1) % n] + 1e-300);
  const double denom = pl - 2.0 * pc + pr;
  const double delta = (denom == 0.0) ? 0.0 : 0.5 * (pl - pr) / denom;
  double kk = (k < n / 2) ? static_cast<double>(k)
                          : static_cast<double>(k) - static_cast<double>(n);
  kk += std::clamp(delta, -0.5, 0.5);
  return kk * sample_rate_hz / static_cast<double>(n);
}

}  // namespace mmx::dsp
