#include "mmx/dsp/fft.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::dsp {
namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void bit_reverse_permute(std::span<Complex> x) {
  const std::size_t n = x.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
}

void fft_core(std::span<Complex> x, bool inverse) {
  const std::size_t n = x.size();
  if (!is_pow2(n)) throw std::invalid_argument("fft: size must be a power of two");
  bit_reverse_permute(x);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? kTwoPi : -kTwoPi) / static_cast<double>(len);
    const Complex wlen{std::cos(ang), std::sin(ang)};
    for (std::size_t i = 0; i < n; i += len) {
      Complex w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = x[i + k];
        const Complex v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (Complex& s : x) s *= inv;
  }
}

}  // namespace

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(std::span<Complex> x) { fft_core(x, /*inverse=*/false); }
void ifft_inplace(std::span<Complex> x) { fft_core(x, /*inverse=*/true); }

Cvec fft(std::span<const Complex> x) {
  Cvec out(x.begin(), x.end());
  out.resize(next_pow2(std::max<std::size_t>(1, out.size())), Complex{});
  fft_inplace(out);
  return out;
}

Cvec ifft(std::span<const Complex> x) {
  Cvec out(x.begin(), x.end());
  out.resize(next_pow2(std::max<std::size_t>(1, out.size())), Complex{});
  ifft_inplace(out);
  return out;
}

Rvec power_spectrum(std::span<const Complex> x, WindowKind window) {
  Cvec buf(x.begin(), x.end());
  const Rvec w = make_window(window, buf.size());
  apply_window(buf, w);
  buf.resize(next_pow2(std::max<std::size_t>(1, buf.size())), Complex{});
  fft_inplace(buf);
  Rvec p(buf.size());
  const double inv_n = 1.0 / static_cast<double>(buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) p[i] = std::norm(buf[i]) * inv_n;
  return p;
}

double bin_frequency(std::size_t k, std::size_t n, double sample_rate_hz) {
  if (n == 0) throw std::invalid_argument("bin_frequency: n must be > 0");
  const double kk = (k < n / 2) ? static_cast<double>(k)
                                : static_cast<double>(k) - static_cast<double>(n);
  return kk * sample_rate_hz / static_cast<double>(n);
}

std::size_t peak_bin(std::span<const double> spectrum) {
  if (spectrum.empty()) throw std::invalid_argument("peak_bin: empty spectrum");
  return static_cast<std::size_t>(
      std::distance(spectrum.begin(), std::max_element(spectrum.begin(), spectrum.end())));
}

double estimate_tone_frequency(std::span<const Complex> x, double sample_rate_hz) {
  if (x.size() < 8) throw std::invalid_argument("estimate_tone_frequency: need >= 8 samples");
  const Rvec p = power_spectrum(x);
  const std::size_t n = p.size();
  const std::size_t k = peak_bin(p);
  // 3-point parabolic interpolation on log power (wraps circularly).
  const double pl = std::log(p[(k + n - 1) % n] + 1e-300);
  const double pc = std::log(p[k] + 1e-300);
  const double pr = std::log(p[(k + 1) % n] + 1e-300);
  const double denom = pl - 2.0 * pc + pr;
  const double delta = (denom == 0.0) ? 0.0 : 0.5 * (pl - pr) / denom;
  double kk = (k < n / 2) ? static_cast<double>(k)
                          : static_cast<double>(k) - static_cast<double>(n);
  kk += std::clamp(delta, -0.5, 0.5);
  return kk * sample_rate_hz / static_cast<double>(n);
}

}  // namespace mmx::dsp
