#include "mmx/dsp/noise.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::dsp {

void awgn_into(std::span<Complex> out, double power_lin, Rng& rng) {
  if (power_lin < 0.0) throw std::invalid_argument("awgn: power must be >= 0");
  const double sigma = std::sqrt(power_lin / 2.0);
  for (Complex& s : out) s = Complex{rng.gaussian(sigma), rng.gaussian(sigma)};
}

Cvec awgn(std::size_t n, double power_lin, Rng& rng) {
  Cvec out(n);
  awgn_into(out, power_lin, rng);
  return out;
}

void add_awgn(std::span<Complex> x, double power_lin, Rng& rng) {
  if (power_lin < 0.0) throw std::invalid_argument("add_awgn: power must be >= 0");
  const double sigma = std::sqrt(power_lin / 2.0);
  for (Complex& s : x) s += Complex{rng.gaussian(sigma), rng.gaussian(sigma)};
}

void add_awgn_snr(std::span<Complex> x, double snr_db, Rng& rng) {
  const double sig = mean_power(x);
  add_awgn(x, sig / db_to_lin(snr_db), rng);
}

}  // namespace mmx::dsp
