#include "mmx/dsp/spectrum.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "mmx/common/units.hpp"
#include "mmx/dsp/fft.hpp"

namespace mmx::dsp {
namespace {

/// Power spectrum reordered to ascending frequency with a matching
/// frequency axis.
std::pair<Rvec, Rvec> sorted_spectrum(std::span<const Complex> x, double fs) {
  const Rvec p = power_spectrum(x);
  const std::size_t n = p.size();
  Rvec power(n);
  Rvec freq(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Map bin k to its (negative-aware) frequency, then shift so index 0
    // is the most negative frequency.
    const std::size_t shifted = (k + n / 2) % n;
    power[k] = p[shifted];
    freq[k] = bin_frequency(shifted, n, fs);
  }
  return {power, freq};
}

}  // namespace

ObwResult occupied_bandwidth(std::span<const Complex> x, double sample_rate_hz,
                             double fraction) {
  if (x.size() < 64) throw std::invalid_argument("occupied_bandwidth: need >= 64 samples");
  if (fraction <= 0.0 || fraction >= 1.0)
    throw std::invalid_argument("occupied_bandwidth: fraction must be in (0, 1)");
  const auto [power, freq] = sorted_spectrum(x, sample_rate_hz);

  double total = 0.0;
  double centroid = 0.0;
  for (std::size_t k = 0; k < power.size(); ++k) {
    total += power[k];
    centroid += power[k] * freq[k];
  }
  if (total <= 0.0) throw std::invalid_argument("occupied_bandwidth: zero-power signal");
  centroid /= total;

  // Trim (1-fraction)/2 of the power from each tail.
  const double tail = total * (1.0 - fraction) / 2.0;
  std::size_t lo = 0;
  double acc = 0.0;
  while (lo < power.size() && acc + power[lo] < tail) acc += power[lo++];
  std::size_t hi = power.size() - 1;
  acc = 0.0;
  while (hi > lo && acc + power[hi] < tail) acc += power[hi--];

  ObwResult r;
  r.low_hz = freq[lo];
  r.high_hz = freq[hi];
  r.bandwidth_hz = r.high_hz - r.low_hz;
  r.center_hz = centroid;
  return r;
}

double power_in_band(std::span<const Complex> x, double sample_rate_hz, double low_hz,
                     double high_hz) {
  if (low_hz >= high_hz) throw std::invalid_argument("power_in_band: low must be < high");
  const auto [power, freq] = sorted_spectrum(x, sample_rate_hz);
  double total = 0.0;
  double in_band = 0.0;
  for (std::size_t k = 0; k < power.size(); ++k) {
    total += power[k];
    if (freq[k] >= low_hz && freq[k] <= high_hz) in_band += power[k];
  }
  if (total <= 0.0) throw std::invalid_argument("power_in_band: zero-power signal");
  return in_band / total;
}

std::vector<DetectedChannel> detect_active_channels(std::span<const Complex> x,
                                                    double sample_rate_hz,
                                                    double channel_bw_hz,
                                                    double threshold_db) {
  if (x.size() < 64) throw std::invalid_argument("detect_active_channels: need >= 64 samples");
  if (channel_bw_hz <= 0.0 || channel_bw_hz > sample_rate_hz)
    throw std::invalid_argument("detect_active_channels: bad channel bandwidth");
  if (threshold_db <= 0.0)
    throw std::invalid_argument("detect_active_channels: threshold must be > 0 dB");
  const auto [power, freq] = sorted_spectrum(x, sample_rate_hz);

  const auto n_channels =
      static_cast<std::size_t>(std::floor(sample_rate_hz / channel_bw_hz));
  if (n_channels == 0) return {};
  std::vector<double> ch_power(n_channels, 0.0);
  for (std::size_t k = 0; k < power.size(); ++k) {
    const double pos = (freq[k] + sample_rate_hz / 2.0) / channel_bw_hz;
    const auto idx = static_cast<std::size_t>(std::min(
        static_cast<double>(n_channels - 1), std::max(0.0, std::floor(pos))));
    ch_power[idx] += power[k];
  }

  std::vector<double> sorted = ch_power;
  std::sort(sorted.begin(), sorted.end());
  const double floor_power = std::max(sorted[sorted.size() / 2], 1e-300);

  std::vector<DetectedChannel> out;
  for (std::size_t c = 0; c < n_channels; ++c) {
    const double margin = lin_to_db(std::max(ch_power[c], 1e-300) / floor_power);
    if (margin >= threshold_db) {
      DetectedChannel d;
      d.center_hz = -sample_rate_hz / 2.0 + (static_cast<double>(c) + 0.5) * channel_bw_hz;
      d.power_db = lin_to_db(std::max(ch_power[c], 1e-300));
      d.above_floor_db = margin;
      out.push_back(d);
    }
  }
  return out;
}

}  // namespace mmx::dsp
