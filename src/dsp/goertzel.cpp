#include "mmx/dsp/goertzel.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::dsp {
namespace {

// Renormalize the rotator every this many samples: |rot| picks up at
// most ~eps of relative error per multiply, so between renorms the
// amplitude drift stays below ~1024 * 1.1e-16 ≈ 1.2e-13 — far inside
// the 1e-9 equivalence tolerance (see docs/DSP_FASTPATH.md).
constexpr std::size_t kRenormInterval = 1024;

Complex unit_phasor(double angle_rad) {
  return Complex{std::cos(angle_rad), std::sin(angle_rad)};  // mmx-lint: allow(trig-per-sample) -- setup: one phasor per block/bin, not per sample
}

/// One pass over `x` accumulating M rotator-correlation bins at once.
template <std::size_t M>
void measure_bins(std::span<const Complex> x, const Complex* steps, double* powers) {
  std::array<Complex, M> rot;
  std::array<Complex, M> acc;
  rot.fill(Complex{1.0, 0.0});
  acc.fill(Complex{0.0, 0.0});
  std::size_t until_renorm = kRenormInterval;
  for (const Complex& s : x) {
    for (std::size_t i = 0; i < M; ++i) {
      acc[i] += cmul(s, rot[i]);
      rot[i] = cmul(rot[i], steps[i]);
    }
    if (--until_renorm == 0) {
      for (std::size_t i = 0; i < M; ++i) rot[i] /= std::abs(rot[i]);
      until_renorm = kRenormInterval;
    }
  }
  const double n = static_cast<double>(x.size());
  for (std::size_t i = 0; i < M; ++i)
    powers[i] = x.empty() ? 0.0 : std::norm(acc[i]) / (n * n);
}

}  // namespace

Complex goertzel(std::span<const Complex> x, double freq_hz, double sample_rate_hz) {
  if (sample_rate_hz <= 0.0) throw std::invalid_argument("goertzel: sample rate must be > 0");
  // Direct correlation form: X(f) = sum x[n] e^{-j w n}. For complex input
  // this is both simpler and numerically safer than the classic recursive
  // real-input Goertzel, with identical O(N) cost. The phasor advances by
  // one complex multiply per sample (no per-sample transcendentals).
  const double w = kTwoPi * freq_hz / sample_rate_hz;
  const Complex step = unit_phasor(-w);
  Complex acc{0.0, 0.0};
  Complex rot{1.0, 0.0};
  std::size_t until_renorm = kRenormInterval;
  for (const Complex& s : x) {
    acc += cmul(s, rot);
    rot = cmul(rot, step);
    if (--until_renorm == 0) {
      rot /= std::abs(rot);
      until_renorm = kRenormInterval;
    }
  }
  return acc;
}

double goertzel_power(std::span<const Complex> x, double freq_hz, double sample_rate_hz) {
  if (x.empty()) return 0.0;
  const Complex c = goertzel(x, freq_hz, sample_rate_hz);
  const double n = static_cast<double>(x.size());
  return std::norm(c) / (n * n);
}

GoertzelBin::GoertzelBin(double freq_hz, double sample_rate_hz)
    : until_renorm_(kRenormInterval) {
  if (sample_rate_hz <= 0.0) throw std::invalid_argument("GoertzelBin: sample rate must be > 0");
  step_ = unit_phasor(-kTwoPi * freq_hz / sample_rate_hz);
}

void GoertzelBin::push(Complex x) {
  acc_ += cmul(x, rot_);
  rot_ = cmul(rot_, step_);
  if (--until_renorm_ == 0) {
    rot_ /= std::abs(rot_);
    until_renorm_ = kRenormInterval;
  }
  ++n_;
}

Complex GoertzelBin::coefficient() const { return acc_; }

double GoertzelBin::power() const {
  if (n_ == 0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::norm(acc_) / (n * n);
}

void GoertzelBin::reset() {
  acc_ = Complex{0.0, 0.0};
  rot_ = Complex{1.0, 0.0};
  until_renorm_ = kRenormInterval;
  n_ = 0;
}

GoertzelBank::GoertzelBank(std::span<const double> freqs_hz, double sample_rate_hz) {
  if (sample_rate_hz <= 0.0) throw std::invalid_argument("GoertzelBank: sample rate must be > 0");
  if (freqs_hz.empty()) throw std::invalid_argument("GoertzelBank: need at least one bin");
  steps_.reserve(freqs_hz.size());
  for (double f : freqs_hz) steps_.push_back(unit_phasor(-kTwoPi * f / sample_rate_hz));
}

GoertzelBank::GoertzelBank(std::initializer_list<double> freqs_hz, double sample_rate_hz)
    : GoertzelBank(std::span<const double>(freqs_hz.begin(), freqs_hz.size()),
                   sample_rate_hz) {}

void GoertzelBank::measure(std::span<const Complex> x, std::span<double> powers) const {
  if (powers.size() < steps_.size())
    throw std::invalid_argument("GoertzelBank::measure: powers span too small");
  // Bins swept in groups so each group is a single pass over the block;
  // the two-bin group is the FSK discriminator's hot shape.
  std::size_t base = 0;
  while (base < steps_.size()) {
    const std::size_t m = steps_.size() - base;
    if (m >= 4) {
      measure_bins<4>(x, steps_.data() + base, powers.data() + base);
      base += 4;
    } else if (m == 3) {
      measure_bins<3>(x, steps_.data() + base, powers.data() + base);
      base += 3;
    } else if (m == 2) {
      measure_bins<2>(x, steps_.data() + base, powers.data() + base);
      base += 2;
    } else {
      measure_bins<1>(x, steps_.data() + base, powers.data() + base);
      base += 1;
    }
  }
}

}  // namespace mmx::dsp
