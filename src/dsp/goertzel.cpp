#include "mmx/dsp/goertzel.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::dsp {

Complex goertzel(std::span<const Complex> x, double freq_hz, double sample_rate_hz) {
  if (sample_rate_hz <= 0.0) throw std::invalid_argument("goertzel: sample rate must be > 0");
  // Direct correlation form: X(f) = sum x[n] e^{-j w n}. For complex input
  // this is both simpler and numerically safer than the classic recursive
  // real-input Goertzel, with identical O(N) cost.
  const double w = kTwoPi * freq_hz / sample_rate_hz;
  Complex acc{0.0, 0.0};
  double phase = 0.0;
  for (const Complex& s : x) {
    acc += s * Complex{std::cos(phase), -std::sin(phase)};
    phase = wrap_angle(phase + w);
  }
  return acc;
}

double goertzel_power(std::span<const Complex> x, double freq_hz, double sample_rate_hz) {
  if (x.empty()) return 0.0;
  const Complex c = goertzel(x, freq_hz, sample_rate_hz);
  const double n = static_cast<double>(x.size());
  return std::norm(c) / (n * n);
}

GoertzelBin::GoertzelBin(double freq_hz, double sample_rate_hz) {
  if (sample_rate_hz <= 0.0) throw std::invalid_argument("GoertzelBin: sample rate must be > 0");
  w_ = kTwoPi * freq_hz / sample_rate_hz;
}

void GoertzelBin::push(Complex x) {
  acc_ += x * Complex{std::cos(phase_), -std::sin(phase_)};
  phase_ = wrap_angle(phase_ + w_);
  ++n_;
}

Complex GoertzelBin::coefficient() const { return acc_; }

double GoertzelBin::power() const {
  if (n_ == 0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::norm(acc_) / (n * n);
}

void GoertzelBin::reset() {
  acc_ = Complex{0.0, 0.0};
  phase_ = 0.0;
  n_ = 0;
}

}  // namespace mmx::dsp
