#include "mmx/dsp/resample.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

#include "mmx/common/units.hpp"
#include "mmx/dsp/fir.hpp"

namespace mmx::dsp {
namespace {

/// Windowed-sinc prototypes are pure functions of (normalized cutoff,
/// taps), yet decimate/upsample/resample_rational used to re-run the
/// design on every call. Cache the built filter per thread and just
/// reset its delay line — repeat conversions at the same factor cost no
/// design work and no allocation.
FirFilter& cached_lowpass(double cutoff_norm, std::size_t taps) {
  thread_local std::map<std::pair<double, std::size_t>, FirFilter> cache;
  const auto key = std::make_pair(cutoff_norm, taps);
  auto it = cache.find(key);
  if (it == cache.end())
    it = cache.emplace(key, FirFilter(design_lowpass(1.0, cutoff_norm, taps))).first;
  it->second.reset();
  return it->second;
}

}  // namespace

Cvec decimate(std::span<const Complex> x, std::size_t factor, std::size_t taps) {
  if (factor == 0) throw std::invalid_argument("decimate: factor must be > 0");
  if (factor == 1) return Cvec(x.begin(), x.end());
  // Anti-alias at 0.45 of the post-decimation Nyquist, in normalized units
  // of the *input* rate: cutoff = 0.45 / (2*factor) cycles/sample.
  FirFilter& lp = cached_lowpass(0.45 / (2.0 * static_cast<double>(factor)), taps);
  Cvec out;
  out.reserve(x.size() / factor + 1);
  std::size_t phase = 0;
  for (const Complex& s : x) {
    const Complex y = lp.process(s);
    if (phase == 0) out.push_back(y);
    phase = (phase + 1) % factor;
  }
  return out;
}

Cvec upsample(std::span<const Complex> x, std::size_t factor, std::size_t taps) {
  if (factor == 0) throw std::invalid_argument("upsample: factor must be > 0");
  if (factor == 1) return Cvec(x.begin(), x.end());
  FirFilter& lp = cached_lowpass(0.45 / (2.0 * static_cast<double>(factor)), taps);
  Cvec out;
  out.reserve(x.size() * factor);
  const double gain = static_cast<double>(factor);  // restore amplitude after zero-stuffing
  for (const Complex& s : x) {
    out.push_back(lp.process(s * gain));
    for (std::size_t k = 1; k < factor; ++k) out.push_back(lp.process(Complex{}));
  }
  return out;
}

Cvec resample_rational(std::span<const Complex> x, std::size_t up, std::size_t down,
                       std::size_t taps) {
  if (up == 0 || down == 0)
    throw std::invalid_argument("resample_rational: factors must be > 0");
  if (up == down) return Cvec(x.begin(), x.end());
  // Polyphase-equivalent direct form: one low-pass at the high
  // (intermediate) rate, cut at 0.45x the narrower of the two Nyquists.
  const double cutoff = 0.45 / static_cast<double>(std::max(up, down));
  FirFilter& lp = cached_lowpass(cutoff, taps);
  const double gain = static_cast<double>(up);
  Cvec out;
  out.reserve(x.size() * up / down + 1);
  std::size_t phase = 0;
  for (const Complex& s : x) {
    for (std::size_t k = 0; k < up; ++k) {
      const Complex y = lp.process(k == 0 ? s * gain : Complex{});
      if (phase == 0) out.push_back(y);
      phase = (phase + 1) % down;
    }
  }
  return out;
}

Cvec frequency_shift(std::span<const Complex> x, double offset_hz, double sample_rate_hz) {
  if (sample_rate_hz <= 0.0) throw std::invalid_argument("frequency_shift: sample rate must be > 0");
  Cvec out(x.size());
  // Rotator form of out[i] = x[i] * e^{j w i}: one complex multiply per
  // sample, with the phasor resynced from the tracked phase periodically
  // so drift stays bounded (same scheme as Nco — docs/DSP_FASTPATH.md).
  constexpr std::size_t kResyncInterval = 256;
  const double step = wrap_angle(kTwoPi * offset_hz / sample_rate_hz);
  double phase = 0.0;
  Complex rot{1.0, 0.0};
  const Complex inc{std::cos(step), std::sin(step)};  // mmx-lint: allow(trig-per-sample) -- setup before the loop
  std::size_t until_resync = kResyncInterval;
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = cmul(x[i], rot);
    rot = cmul(rot, inc);
    phase += step;
    if (phase > kPi) phase -= kTwoPi;
    if (phase <= -kPi) phase += kTwoPi;
    if (--until_resync == 0) {
      rot = Complex{std::cos(phase), std::sin(phase)};  // mmx-lint: allow(trig-per-sample) -- drift resync, amortized over 256 samples
      until_resync = kResyncInterval;
    }
  }
  return out;
}

}  // namespace mmx::dsp
