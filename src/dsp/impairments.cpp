#include "mmx/dsp/impairments.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::dsp {
namespace {

std::pair<Complex, Complex> alpha_beta(const IqImbalance& imb) {
  const double g = db_to_amp(imb.gain_db);
  const Complex ge{g * std::cos(imb.phase_rad), g * std::sin(imb.phase_rad)};
  return {(1.0 + ge) / 2.0, (1.0 - ge) / 2.0};
}

}  // namespace

Cvec apply_iq_imbalance(std::span<const Complex> x, const IqImbalance& imb) {
  const auto [alpha, beta] = alpha_beta(imb);
  Cvec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = alpha * x[i] + beta * std::conj(x[i]);
  return out;
}

Cvec apply_dc_offset(std::span<const Complex> x, Complex offset) {
  Cvec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] + offset;
  return out;
}

double image_rejection_db(const IqImbalance& imb) {
  const auto [alpha, beta] = alpha_beta(imb);
  if (std::norm(beta) == 0.0) return 200.0;
  return lin_to_db(std::norm(alpha) / std::norm(beta));
}

void IqCompensator::estimate(std::span<const Complex> y) {
  if (y.size() < 16) throw std::invalid_argument("IqCompensator: block too short");
  Complex mean{0.0, 0.0};
  for (const Complex& s : y) mean += s;
  mean /= static_cast<double>(y.size());
  dc_ = mean;

  // After DC removal: y' = alpha x + beta conj(x). For a circular signal
  // E[x^2] = 0, so E[y'^2] = 2 alpha beta E[|x|^2] while
  // E[|y'|^2] ~ |alpha|^2 E[|x|^2]; the ratio estimates 2 beta / alpha*.
  // z = y' - w conj(y') cancels the image exactly when w = beta/alpha*,
  // i.e. half the measured ratio.
  Complex c2{0.0, 0.0};
  double p = 0.0;
  for (const Complex& s : y) {
    const Complex yc = s - dc_;
    c2 += yc * yc;
    p += std::norm(yc);
  }
  if (p == 0.0) throw std::invalid_argument("IqCompensator: zero-power block");
  w_ = c2 / (2.0 * p);
}

Cvec IqCompensator::process(std::span<const Complex> y) const {
  Cvec out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    const Complex yc = y[i] - dc_;
    out[i] = yc - w_ * std::conj(yc);
  }
  return out;
}

double IqCompensator::estimated_image_ratio() const { return std::norm(w_); }

}  // namespace mmx::dsp
