#include "mmx/dsp/fft_plan.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "mmx/common/units.hpp"

namespace mmx::dsp {
namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (!is_pow2(n)) throw std::invalid_argument("fft: size must be a power of two");
  bitrev_.resize(n);
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    bitrev_[i] = static_cast<std::uint32_t>(j);
  }
  // One forward twiddle block per stage: stage `len` needs
  // w^k = e^{-2*pi*i*k/len} for k in [0, len/2). Each factor is computed
  // directly (not by recurrence), so the table is correctly rounded.
  twiddle_.reserve(n > 0 ? n - 1 : 0);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = -kTwoPi / static_cast<double>(len);
    for (std::size_t k = 0; k < len / 2; ++k) {
      const double ph = ang * static_cast<double>(k);
      twiddle_.emplace_back(std::cos(ph), std::sin(ph));  // mmx-lint: allow(trig-per-sample) -- one-time plan construction, amortized over every transform of this size
    }
  }
}

void FftPlan::transform(std::span<Complex> x, bool inverse) const {
  if (x.size() != n_) throw std::invalid_argument("FftPlan: span size does not match plan");
  for (std::size_t i = 1; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(x[i], x[j]);
  }
  // __restrict: the butterfly stores write Complex and the twiddle reads
  // are Complex too, so without it the compiler must assume every store
  // may clobber the table and re-load/serialize — that alone costs ~2x.
  const Complex* __restrict tw = twiddle_.data();
  Complex* __restrict xp = x.data();
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n_; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const Complex w = inverse ? std::conj(tw[k]) : tw[k];
        const Complex u = xp[i + k];
        const Complex v = cmul(xp[i + k + half], w);
        xp[i + k] = u + v;
        xp[i + k + half] = u - v;
      }
    }
    tw += half;
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n_);
    for (Complex& s : x) s *= inv;
  }
}

void FftPlan::forward(std::span<Complex> x) const { transform(x, /*inverse=*/false); }
void FftPlan::inverse(std::span<Complex> x) const { transform(x, /*inverse=*/true); }

const FftPlan& fft_plan(std::size_t n) {
  if (!is_pow2(n)) throw std::invalid_argument("fft: size must be a power of two");
  // Indexed by log2(n): at most ~64 slots, no hashing on the hot path.
  thread_local std::vector<std::unique_ptr<FftPlan>> cache;
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  if (cache.size() <= log2n) cache.resize(log2n + 1);
  if (!cache[log2n]) cache[log2n] = std::make_unique<FftPlan>(n);
  return *cache[log2n];
}

}  // namespace mmx::dsp
