#include "mmx/dsp/tone.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::dsp {
namespace {

Complex unit_phasor(double angle_rad) {
  return Complex{std::cos(angle_rad), std::sin(angle_rad)};  // mmx-lint: allow(trig-per-sample) -- setup/resync: amortized over kResyncInterval samples
}

}  // namespace

Nco::Nco(double sample_rate_hz, double freq_hz) : sample_rate_hz_(sample_rate_hz) {
  if (sample_rate_hz <= 0.0) throw std::invalid_argument("Nco: sample rate must be > 0");
  tune(freq_hz);
}

void Nco::tune(double freq_hz) {
  if (std::abs(freq_hz) > sample_rate_hz_ / 2.0)
    throw std::invalid_argument("Nco: frequency exceeds Nyquist");
  freq_hz_ = freq_hz;
  step_ = kTwoPi * freq_hz / sample_rate_hz_;
  step_phasor_ = unit_phasor(step_);
  resync();  // a retune is a natural (and free-ish) drift reset point
}

void Nco::set_frequency(double freq_hz) {
  if (freq_hz == freq_hz_) return;  // repeated symbols retune for free
  tune(freq_hz);
}

void Nco::set_phase(double rad) {
  phase_ = rad;
  resync();
}

void Nco::resync() {
  phasor_ = unit_phasor(phase_);
  until_resync_ = kResyncInterval;
}

Cvec Nco::generate(std::size_t n) {
  Cvec out(n);  // mmx-analyze: allow(hot-path-alloc) -- allocating convenience wrapper; the zero-alloc fast path is generate_into
  generate_into(out);
  return out;
}

void Nco::generate_into(std::span<Complex> out) {
  // Batched form of repeated next(): state lives in locals for runs that
  // stop exactly at the resync boundaries, so the inner loop carries no
  // out-of-line call and the compiler keeps everything in registers.
  // The per-sample operation sequence is identical to next(), so the
  // output is bit-identical to calling next() out.size() times.
  std::size_t i = 0;
  const std::size_t n = out.size();
  while (i < n) {
    const std::size_t run = n - i < until_resync_ ? n - i : until_resync_;
    Complex ph = phasor_;
    double phase = phase_;
    const Complex stp = step_phasor_;
    const double step = step_;
    for (const std::size_t end = i + run; i < end; ++i) {
      out[i] = ph;
      ph = cmul(ph, stp);
      phase = wrap_step(phase + step);
    }
    phasor_ = ph;
    phase_ = phase;
    until_resync_ -= run;
    if (until_resync_ == 0) resync();
  }
}

void Nco::modulate_into(std::span<Complex> out, Complex gain) {
  // Same batched structure as generate_into, with each sample scaled by
  // `gain` — the shape the OTAM synthesizer runs once per symbol.
  std::size_t i = 0;
  const std::size_t n = out.size();
  while (i < n) {
    const std::size_t run = n - i < until_resync_ ? n - i : until_resync_;
    Complex ph = phasor_;
    double phase = phase_;
    const Complex stp = step_phasor_;
    const double step = step_;
    for (const std::size_t end = i + run; i < end; ++i) {
      out[i] = cmul(gain, ph);
      ph = cmul(ph, stp);
      phase = wrap_step(phase + step);
    }
    phasor_ = ph;
    phase_ = phase;
    until_resync_ -= run;
    if (until_resync_ == 0) resync();
  }
}

Cvec tone(double sample_rate_hz, double freq_hz, std::size_t n, double phase0) {
  Nco nco(sample_rate_hz, freq_hz);
  nco.set_phase(phase0);
  return nco.generate(n);
}

Cvec chirp(double sample_rate_hz, double f0_hz, double f1_hz, std::size_t n) {
  if (sample_rate_hz <= 0.0) throw std::invalid_argument("chirp: sample rate must be > 0");
  Cvec out(n);
  if (n == 0) return out;
  // Double rotator: `rot` carries e^{j phase_i}, `inc` carries the
  // per-sample advance e^{j w_i}; the sweep multiplies `inc` by the fixed
  // e^{j dw}. Phase and instantaneous step are still tracked additively,
  // and both phasors resync from them on the same cadence as Nco.
  constexpr std::size_t kResyncInterval = 256;
  const double df = (f1_hz - f0_hz) / static_cast<double>(n);
  const double dw = kTwoPi * df / sample_rate_hz;
  double phase = 0.0;
  Complex rot{1.0, 0.0};
  Complex inc = unit_phasor(kTwoPi * f0_hz / sample_rate_hz);
  const Complex dinc = unit_phasor(dw);
  std::size_t until_resync = kResyncInterval;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = rot;
    rot = cmul(rot, inc);
    inc = cmul(inc, dinc);
    // The tracked phase recomputes the instantaneous frequency in closed
    // form each sample (exactly like the trig reference, so the two stay
    // within a rounding random walk); accumulating the step incrementally
    // instead would drift quadratically in n.
    const double f = f0_hz + df * static_cast<double>(i);
    const double w = kTwoPi * f / sample_rate_hz;
    phase = (std::abs(w) <= kPi) ? wrap_step(phase + w) : wrap_angle(phase + w);
    if (--until_resync == 0) {
      rot = unit_phasor(phase);
      inc = unit_phasor(kTwoPi * (f0_hz + df * static_cast<double>(i + 1)) / sample_rate_hz);
      until_resync = kResyncInterval;
    }
  }
  return out;
}

}  // namespace mmx::dsp
