#include "mmx/dsp/tone.hpp"

#include <cmath>
#include <stdexcept>

#include "mmx/common/units.hpp"

namespace mmx::dsp {

Nco::Nco(double sample_rate_hz, double freq_hz) : sample_rate_hz_(sample_rate_hz) {
  if (sample_rate_hz <= 0.0) throw std::invalid_argument("Nco: sample rate must be > 0");
  set_frequency(freq_hz);
}

void Nco::set_frequency(double freq_hz) {
  if (std::abs(freq_hz) > sample_rate_hz_ / 2.0)
    throw std::invalid_argument("Nco: frequency exceeds Nyquist");
  freq_hz_ = freq_hz;
  step_ = kTwoPi * freq_hz / sample_rate_hz_;
}

Complex Nco::next() {
  const Complex s{std::cos(phase_), std::sin(phase_)};
  phase_ = wrap_angle(phase_ + step_);
  return s;
}

Cvec Nco::generate(std::size_t n) {
  Cvec out(n);
  for (Complex& s : out) s = next();
  return out;
}

Cvec tone(double sample_rate_hz, double freq_hz, std::size_t n, double phase0) {
  Nco nco(sample_rate_hz, freq_hz);
  nco.set_phase(phase0);
  return nco.generate(n);
}

Cvec chirp(double sample_rate_hz, double f0_hz, double f1_hz, std::size_t n) {
  if (sample_rate_hz <= 0.0) throw std::invalid_argument("chirp: sample rate must be > 0");
  Cvec out(n);
  if (n == 0) return out;
  const double df = (f1_hz - f0_hz) / static_cast<double>(n);
  double phase = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = Complex{std::cos(phase), std::sin(phase)};
    const double f = f0_hz + df * static_cast<double>(i);
    phase = wrap_angle(phase + kTwoPi * f / sample_rate_hz);
  }
  return out;
}

}  // namespace mmx::dsp
