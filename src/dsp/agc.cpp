#include "mmx/dsp/agc.hpp"

#include <cmath>
#include <stdexcept>

namespace mmx::dsp {

Agc::Agc(double target_rms, double alpha) : target_rms_(target_rms), alpha_(alpha) {
  if (target_rms <= 0.0) throw std::invalid_argument("Agc: target_rms must be > 0");
  if (alpha <= 0.0 || alpha > 1.0) throw std::invalid_argument("Agc: alpha must be in (0, 1]");
}

Complex Agc::process(Complex x) {
  const double mag = std::abs(x);
  level_ = (1.0 - alpha_) * level_ + alpha_ * mag;
  if (level_ > 1e-300) gain_lin_ = target_rms_ / level_;
  return x * gain_lin_;
}

Cvec Agc::process(std::span<const Complex> x) {
  Cvec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = process(x[i]);
  return out;
}

void Agc::reset() {
  gain_lin_ = 1.0;
  level_ = 0.0;
}

}  // namespace mmx::dsp
