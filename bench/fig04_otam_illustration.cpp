// Figure 4: the OTAM mechanism, end to end, in both of the paper's
// illustrative scenarios.
//
// (a) clear LoS: Beam 1's signal dominates -> '1' arrives bright;
// (b) LoS blocked: Beam 0's reflection dominates -> every bit arrives
//     inverted, and the known preamble flips them back.
#include <cstdio>

#include "mmx/channel/beam_channel.hpp"
#include "mmx/channel/blockage.hpp"
#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/phy/pipeline.hpp"
#include "mmx/phy/preamble.hpp"

using namespace mmx;
using namespace mmx::phy;

namespace {

void run_scenario(const char* label, bool blocked, Rng& rng) {
  channel::Room room(6.0, 4.0);
  const channel::Pose node{{1.0, 2.0}, 0.0};
  const channel::Pose ap{{5.0, 2.0}, kPi};
  if (blocked) channel::park_blocker_on_los(room, node.position, ap.position);
  channel::RayTracer tracer(room);
  antenna::MmxBeamPair beams;
  antenna::Dipole ap_antenna;
  const auto g =
      channel::compute_beam_gains(tracer, node, beams, ap, ap_antenna, 24.125e9);

  rf::SpdtSwitch sw;
  PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 16;
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;

  const Bits& preamble = default_preamble();
  Bits bits = preamble;
  for (int b : {1, 0, 1}) bits.push_back(b);  // the paper's "101" example

  FramePipeline& pipe = thread_pipeline(cfg);
  pipe.synthesize_otam(bits, {g.h0, g.h1}, sw);
  pipe.add_noise_snr(25.0, rng);
  const JointDecision& d = pipe.demodulate_joint(preamble);

  std::printf("--- %s ---\n", label);
  std::printf("  |h1| (Beam 1 path): %6.1f dB   |h0| (Beam 0 path): %6.1f dB\n",
              amp_to_db(std::abs(g.h1)), amp_to_db(std::abs(g.h0)));
  std::printf("  level for '1' %s level for '0'  ->  polarity %s\n",
              std::abs(g.h1) > std::abs(g.h0) ? ">" : "<",
              d.ask_inverted ? "INVERTED (preamble corrects it)" : "normal");
  std::printf("  transmitted 101 -> decoded %d%d%d\n\n",
              d.bits[preamble.size()], d.bits[preamble.size() + 1],
              d.bits[preamble.size() + 2]);
}

}  // namespace

int main() {
  std::puts("=== Figure 4: Over-The-Air Modulation, both scenarios ===");
  std::puts("the node only ever transmits a pure carrier, switched between beams\n");
  Rng rng(4);
  run_scenario("(a) line of sight clear: Beam 1 rides the direct path", false, rng);
  run_scenario("(b) line of sight blocked: Beam 0 rides the reflection", true, rng);
  std::puts("in both cases the AP sees ASK it can decode — no beam search, no");
  std::puts("feedback, no phased array. That is the paper's central trick.");
  return 0;
}
