#include "harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "build_info.hpp"
#include "mmx/obs/export.hpp"
#include "mmx/obs/obs.hpp"
#include "mmx/obs/trace.hpp"

namespace mmx::bench {

namespace {

[[noreturn]] void usage(const char* prog, std::size_t default_trials, std::uint64_t default_seed,
                        const char* trials_meaning, const std::vector<ExtraFlag>& extras,
                        int exit_code) {
  std::fprintf(stderr,
               "usage: %s [--trials N] [--threads K] [--seed S] [--json PATH]%s\n"
               "  --trials N    %s (default %zu)\n"
               "  --threads K   worker threads, 0 = one per hardware thread (default 0)\n"
               "  --seed S      root seed; trial i draws from Rng::stream(S, i) (default %llu)\n"
               "  --json PATH   write metric summaries + wall-clock + trials/s as JSON\n"
               "  --obs         collect mmx::obs instruments; adds an \"obs\" JSON block\n"
               "  --trace PATH  write chrome://tracing JSON of the run (implies --obs)\n",
               prog, extras.empty() ? "" : " [bench flags]", trials_meaning, default_trials,
               static_cast<unsigned long long>(default_seed));
  for (const ExtraFlag& e : extras)
    std::fprintf(stderr, "  %s %s\n", e.flag, e.help);
  std::exit(exit_code);
}

std::uint64_t parse_u64(const char* prog, const char* flag, const char* value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "%s: %s expects a non-negative integer, got '%s'\n", prog, flag, value);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(v);
}

// All doubles round-trip: 17 significant digits.
std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Compiler flag strings can contain quotes/backslashes; escape for JSON.
std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
  return out;
}

// The "obs" report block: every registered instrument plus the
// Prometheus text exposition, emitted only when --obs was given so
// un-instrumented reports stay byte-identical to pre-obs builds.
std::string obs_json_block() {
  std::ostringstream counters, gauges, hists;
  std::size_t nc = 0, ng = 0, nh = 0;
  obs::Registry::global().for_each([&](const std::string& name, char kind,
                                       const obs::Counter* c, const obs::Gauge* g,
                                       const obs::Histogram* h) {
    if (kind == 'c') {
      counters << (nc++ == 0 ? "\n" : ",\n") << "      \"" << name << "\": " << c->value();
    } else if (kind == 'g') {
      gauges << (ng++ == 0 ? "\n" : ",\n") << "      \"" << name << "\": {\"value\": "
             << g->value() << ", \"max\": " << g->max_seen() << "}";
    } else {
      hists << (nh++ == 0 ? "\n" : ",\n") << "      {\"name\": \"" << name
            << "\", \"count\": " << h->count() << ", \"sum\": " << h->sum()
            << ", \"buckets\": [";
      bool first = true;
      for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
        const std::uint64_t n = h->bucket(i);
        if (n == 0) continue;
        hists << (first ? "" : ", ") << "{\"le\": " << obs::Histogram::upper_bound(i)
              << ", \"n\": " << n << "}";
        first = false;
      }
      hists << "]}";
    }
  });
  std::ostringstream out;
  out << "  \"obs\": {\n";
  out << "    \"enabled\": " << (obs::enabled() ? "true" : "false") << ",\n";
  out << "    \"dropped_events\": " << obs::TraceSink::global().dropped() << ",\n";
  out << "    \"counters\": {" << counters.str() << (nc == 0 ? "" : "\n    ") << "},\n";
  out << "    \"gauges\": {" << gauges.str() << (ng == 0 ? "" : "\n    ") << "},\n";
  out << "    \"histograms\": [" << hists.str() << (nh == 0 ? "" : "\n    ") << "],\n";
  out << "    \"prometheus\": [";
  const std::vector<std::string> lines = obs::prometheus_lines();
  for (std::size_t i = 0; i < lines.size(); ++i)
    out << (i == 0 ? "\n" : ",\n") << "      \"" << json_escape(lines[i].c_str()) << "\"";
  out << (lines.empty() ? "" : "\n    ") << "]\n";
  out << "  }\n";
  return out.str();
}

}  // namespace

Options parse_args(int argc, char** argv, std::size_t default_trials,
                   std::uint64_t default_seed, const char* trials_meaning) {
  return parse_args(argc, argv, default_trials, default_seed, trials_meaning, {});
}

Options parse_args(int argc, char** argv, std::size_t default_trials,
                   std::uint64_t default_seed, const char* trials_meaning,
                   const std::vector<ExtraFlag>& extras) {
  Options opt;
  opt.sweep.trials = default_trials;
  opt.sweep.seed = default_seed;
  const char* prog = argc > 0 ? argv[0] : "bench";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s expects a value\n", prog, arg);
        std::exit(2);
      }
      return argv[++i];
    };
    const auto extra = [&]() -> ExtraFlag const* {
      for (const ExtraFlag& e : extras)
        if (std::strcmp(arg, e.flag) == 0) return &e;
      return nullptr;
    };
    if (std::strcmp(arg, "--trials") == 0) {
      opt.sweep.trials = static_cast<std::size_t>(parse_u64(prog, arg, value()));
    } else if (std::strcmp(arg, "--threads") == 0) {
      opt.sweep.threads = static_cast<std::size_t>(parse_u64(prog, arg, value()));
    } else if (std::strcmp(arg, "--seed") == 0) {
      opt.sweep.seed = parse_u64(prog, arg, value());
    } else if (std::strcmp(arg, "--json") == 0) {
      opt.json_path = value();
    } else if (std::strcmp(arg, "--obs") == 0) {
      opt.obs = true;
    } else if (std::strcmp(arg, "--trace") == 0) {
      opt.trace_path = value();
      opt.obs = true;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(prog, default_trials, default_seed, trials_meaning, extras, 0);
    } else if (const ExtraFlag* e = extra()) {
      *e->value = value();
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", prog, arg);
      usage(prog, default_trials, default_seed, trials_meaning, extras, 2);
    }
  }
  if (opt.sweep.trials == 0) {
    std::fprintf(stderr, "%s: --trials must be >= 1\n", prog);
    std::exit(2);
  }
  if (opt.obs) {
#if MMX_OBS_ENABLED
    // Fresh run scope: instruments registered by earlier static init (or
    // a prior in-process run) start from zero, and the trace carries only
    // this run's events. Buffers stay at the sink's default capacity —
    // refill workers register a fresh buffer per parallel batch, so
    // oversizing every buffer multiplies into real allocation cost on
    // the measured path (and the default holds a full lane's events).
    obs::Registry::global().reset_values();
    obs::TraceSink::global().clear();
    obs::set_enabled(true);
#else
    std::fprintf(stderr,
                 "%s: built with MMX_OBS=OFF; instrumentation is compiled out and the obs "
                 "report will be empty\n",
                 prog);
#endif
  }
  return opt;
}

void report_timing_line(std::size_t trials, std::size_t threads_used, double wall_s,
                        double trials_per_s) {
  std::fprintf(stderr, "[sweep] trials=%zu threads=%zu wall=%.3fs (%.1f trials/s)\n", trials,
               threads_used, wall_s, trials_per_s);
}

JsonReport::JsonReport(std::string bench_name, const Options& options)
    : bench_name_(std::move(bench_name)),
      json_path_(options.json_path),
      trace_path_(options.trace_path),
      obs_enabled_(options.obs),
      seed_(options.sweep.seed) {}

void JsonReport::add_metric(const std::string& name, const std::vector<double>& samples) {
  metrics_.push_back(sim::summarize(name, samples));
}

void JsonReport::add_scalar(const std::string& name, double value) {
  scalars_.emplace_back(name, value);
}

void JsonReport::set_timing(std::size_t trials, std::size_t threads_used, double wall_s,
                            double trials_per_s) {
  trials_ = trials;
  threads_used_ = threads_used;
  wall_s_ = wall_s;
  trials_per_s_ = trials_per_s;
}

bool JsonReport::write() const {
  bool ok = true;
  if (!trace_path_.empty() && !obs::write_chrome_trace(trace_path_)) {
    std::fprintf(stderr, "warning: could not write chrome trace to '%s'\n", trace_path_.c_str());
    ok = false;
  }
  if (json_path_.empty()) return ok;
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"" << bench_name_ << "\",\n";
  out << "  \"trials\": " << trials_ << ",\n";
  out << "  \"threads\": " << threads_used_ << ",\n";
  out << "  \"seed\": " << seed_ << ",\n";
  out << "  \"wall_s\": " << json_double(wall_s_) << ",\n";
  out << "  \"trials_per_s\": " << json_double(trials_per_s_) << ",\n";
  out << "  \"scalars\": {";
  for (std::size_t i = 0; i < scalars_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << scalars_[i].first
        << "\": " << json_double(scalars_[i].second);
  }
  out << (scalars_.empty() ? "" : "\n  ") << "},\n";
  out << "  \"metrics\": [";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    const sim::MetricSummary& m = metrics_[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << m.name << "\", \"count\": " << m.count
        << ", \"mean\": " << json_double(m.mean) << ", \"median\": " << json_double(m.median)
        << ", \"p10\": " << json_double(m.p10) << ", \"p90\": " << json_double(m.p90)
        << ", \"min\": " << json_double(m.min) << ", \"max\": " << json_double(m.max) << "}";
  }
  out << (metrics_.empty() ? "" : "\n  ") << "],\n";
  // Run metadata last: tools/sweep_gate key-scans the document, so the
  // gated keys above must appear before any free-form strings.
  out << "  \"meta\": {\"git_sha\": \"" << json_escape(kBuildGitSha) << "\", \"compiler\": \""
      << json_escape(kBuildCompiler) << "\", \"cxx_flags\": \"" << json_escape(kBuildCxxFlags)
      << "\", \"build_type\": \"" << json_escape(kBuildType)
      << "\", \"cpu_cores\": " << std::thread::hardware_concurrency() << "}"
      << (obs_enabled_ ? ",\n" : "\n");
  // The obs block sits after "meta" for the same reason meta sits last:
  // sweep_gate/bench_trend key-scan the document and must see the gated
  // numeric keys before any free-form instrument names.
  if (obs_enabled_) out << obs_json_block();
  out << "}\n";
  std::ofstream file(json_path_);
  if (!file) {
    std::fprintf(stderr, "warning: could not write JSON report to '%s'\n", json_path_.c_str());
    return false;
  }
  file << out.str();
  return ok && static_cast<bool>(file);
}

}  // namespace mmx::bench
