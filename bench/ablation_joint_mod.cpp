// Ablation: ASK-only vs FSK-only vs joint decoding (§6.3).
//
// Sweep the beam-level ratio |h0|/|h1| through the inversion point and
// measure sample-level bit error rates for each decoder. The paper's
// claim: "FSK or ASK alone is not sufficient to decode the signal in all
// scenarios ... utilizing joint ASK-FSK modulations is essential".
//
// Parallel sweep: the nine ratio points fan across the pool, each
// synthesizing its own waveform from its own counter-derived stream
// (`--trials N` sets the data bits per point).
#include <cstdio>
#include <vector>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/phy/pipeline.hpp"
#include "mmx/sim/sweep.hpp"

#include "harness.hpp"

using namespace mmx;
using namespace mmx::phy;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_args(argc, argv, 4000, 3, "data bits per ratio point");
  PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 16;
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;
  const rf::SpdtSwitch sw;

  const Bits prefix{1, 0, 1, 0, 1, 1, 0, 0};
  const std::size_t bits_per_point = opt.sweep.trials;
  const double snr_db = 18.0;
  const std::vector<double> ratios_db{-20.0, -10.0, -3.0, -1.0, 0.0, 1.0, 3.0, 10.0, 20.0};

  struct PointBer {
    double ask;
    double fsk;
    double joint;
  };
  sim::SweepRunner runner(opt.sweep);
  const auto sweep = runner.map(ratios_db.size(), [&](std::size_t p, Rng& rng) {
    const double h0 = db_to_amp(ratios_db[p]);
    const OtamChannel ch{{h0, 0.0}, {1.0, 0.0}};
    Bits bits = prefix;
    for (std::size_t i = 0; i < bits_per_point; ++i) bits.push_back(rng.uniform_int(0, 1));
    // Thread-local frame pipeline: buffers warm after the first point on
    // each worker, so the sweep body stops allocating per trial.
    FramePipeline& pipe = thread_pipeline(cfg);
    pipe.synthesize_otam(bits, ch, sw);
    pipe.add_noise_snr(snr_db, rng);

    const AskDecision& ask = pipe.demodulate_ask(prefix);
    const FskDecision& fsk = pipe.demodulate_fsk();
    const JointDecision& joint = pipe.demodulate_joint(prefix);
    std::size_t err_ask = 0;
    std::size_t err_fsk = 0;
    std::size_t err_joint = 0;
    std::size_t total = 0;
    for (std::size_t i = prefix.size(); i < bits.size(); ++i) {
      err_ask += (ask.bits[i] != bits[i]);
      err_fsk += (fsk.bits[i] != bits[i]);
      err_joint += (joint.bits[i] != bits[i]);
      ++total;
    }
    const double n = static_cast<double>(total);
    return PointBer{static_cast<double>(err_ask) / n, static_cast<double>(err_fsk) / n,
                    static_cast<double>(err_joint) / n};
  });

  std::puts("=== Ablation: ASK-only vs FSK-only vs joint decoding (18 dB SNR) ===");
  std::puts("level ratio |h0|/|h1| sweeps through the ambiguous point (1.0)\n");
  std::puts("  |h0|/|h1| [dB]   BER ask-only   BER fsk-only   BER joint");
  std::vector<double> joint_ber(ratios_db.size());
  for (std::size_t p = 0; p < ratios_db.size(); ++p) {
    const PointBer& b = sweep.trials[p];
    std::printf("  %14.0f   %12.4f   %12.4f   %9.4f\n", ratios_db[p], b.ask, b.fsk, b.joint);
    joint_ber[p] = b.joint;
  }

  std::puts("\nexpected shape: ASK collapses to ~0.5 at ratio 0 dB; FSK is flat;");
  std::puts("joint tracks the better branch everywhere (the paper's §6.3 argument).");

  bench::report_timing(sweep);
  bench::JsonReport report("ablation_joint_mod", opt);
  report.record(sweep);
  report.add_metric("ber_joint", joint_ber);
  return report.write() ? 0 : 1;
}
