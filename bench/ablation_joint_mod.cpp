// Ablation: ASK-only vs FSK-only vs joint decoding (§6.3).
//
// Sweep the beam-level ratio |h0|/|h1| through the inversion point and
// measure sample-level bit error rates for each decoder. The paper's
// claim: "FSK or ASK alone is not sufficient to decode the signal in all
// scenarios ... utilizing joint ASK-FSK modulations is essential".
#include <cstdio>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/phy/ask.hpp"
#include "mmx/phy/fsk.hpp"
#include "mmx/phy/joint.hpp"
#include "mmx/phy/otam.hpp"

using namespace mmx;
using namespace mmx::phy;

int main() {
  Rng rng(3);
  PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 16;
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;
  rf::SpdtSwitch sw;

  const Bits prefix{1, 0, 1, 0, 1, 1, 0, 0};
  const int kBitsPerPoint = 4000;
  const double snr_db = 18.0;

  std::puts("=== Ablation: ASK-only vs FSK-only vs joint decoding (18 dB SNR) ===");
  std::puts("level ratio |h0|/|h1| sweeps through the ambiguous point (1.0)\n");
  std::puts("  |h0|/|h1| [dB]   BER ask-only   BER fsk-only   BER joint");

  for (double ratio_db : {-20.0, -10.0, -3.0, -1.0, 0.0, 1.0, 3.0, 10.0, 20.0}) {
    const double h0 = db_to_amp(ratio_db);
    const OtamChannel ch{{h0, 0.0}, {1.0, 0.0}};
    std::size_t err_ask = 0;
    std::size_t err_fsk = 0;
    std::size_t err_joint = 0;
    std::size_t total = 0;
    Bits bits = prefix;
    for (int i = 0; i < kBitsPerPoint; ++i) bits.push_back(rng.uniform_int(0, 1));
    auto rx = otam_synthesize(bits, cfg, ch, sw);
    dsp::add_awgn(rx, dsp::mean_power(rx) / db_to_lin(snr_db), rng);

    const AskDecision ask = ask_demodulate(rx, cfg, prefix);
    const FskDecision fsk = fsk_demodulate(rx, cfg);
    const JointDecision joint = joint_demodulate(rx, cfg, prefix);
    for (std::size_t i = prefix.size(); i < bits.size(); ++i) {
      err_ask += (ask.bits[i] != bits[i]);
      err_fsk += (fsk.bits[i] != bits[i]);
      err_joint += (joint.bits[i] != bits[i]);
      ++total;
    }
    std::printf("  %14.0f   %12.4f   %12.4f   %9.4f\n", ratio_db,
                static_cast<double>(err_ask) / total, static_cast<double>(err_fsk) / total,
                static_cast<double>(err_joint) / total);
  }

  std::puts("\nexpected shape: ASK collapses to ~0.5 at ratio 0 dB; FSK is flat;");
  std::puts("joint tracks the better branch everywhere (the paper's §6.3 argument).");
  return 0;
}
