// Figure 13: SNR at the AP versus number of simultaneously transmitting
// nodes (1, 2, 5, 10, 20).
//
// Paper (§9.5): random placements, 100 trials; FDM carries the first
// nodes, SDM (TMA) absorbs the overflow; "even when 20 sensors transmit
// simultaneously, their average SNR is higher than 29 dB" with only a
// slight decrease versus the single-node case.
//
// Parallel sweep: each trial builds its own NetworkSimulator and draws
// placements from its own counter-derived stream (placement count
// depends on admission control, so the draws must live inside the
// trial); each node-count level sweeps under a seed derived from
// (root seed, level) so levels stay decorrelated.
#include <cstdio>
#include <vector>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/sim/network_sim.hpp"
#include "mmx/sim/stats.hpp"
#include "mmx/sim/sweep.hpp"

#include "harness.hpp"

using namespace mmx;

int main(int argc, char** argv) {
  const bench::Options opt =
      bench::parse_args(argc, argv, 100, 99, "random placement trials per node count");
  std::puts("=== Figure 13: multi-node SINR vs number of simultaneous nodes ===");
  std::puts("paper: avg > 29 dB even at 20 nodes; slight decline with load\n");
  std::puts("  nodes   mean SINR [dB]   p10 [dB]   p90 [dB]   trials");

  bench::JsonReport report("fig13_multinode", opt);
  double wall_s = 0.0;
  std::size_t total_trials = 0;
  const int levels[] = {1, 2, 5, 10, 20};
  for (int k : levels) {
    sim::SweepConfig cfg = opt.sweep;
    cfg.seed = Rng::derive_seed(opt.sweep.seed, static_cast<std::uint64_t>(k));
    sim::SweepRunner runner(cfg);
    const auto sweep = runner.run([&, k](std::size_t, Rng& rng) {
      sim::NetworkSimulator net(channel::Room(6.0, 4.0), channel::Pose{{5.7, 2.0}, kPi});
      int placed = 0;
      int attempts = 0;
      // The AP's admission control may deny an unservable bearing; like
      // the paper's experimenters we re-place such a node elsewhere.
      while (placed < k && attempts < 50 * k) {
        ++attempts;
        const channel::Pose pose{{rng.uniform(0.4, 5.2), rng.uniform(0.4, 3.6)},
                                 deg_to_rad(rng.uniform(-60.0, 60.0))};
        if (net.add_node(pose, 20e6)) ++placed;
      }
      std::vector<double> sinr;
      sinr.reserve(static_cast<std::size_t>(placed));
      for (const auto& [id, s] : net.sinr_all_db()) sinr.push_back(s);
      return sinr;
    });
    std::vector<double> all;
    all.reserve(sweep.trials.size() * static_cast<std::size_t>(k));
    for (const auto& trial : sweep.trials) all.insert(all.end(), trial.begin(), trial.end());
    std::printf("  %5d   %14.1f   %8.1f   %8.1f   %6zu\n", k, sim::mean(all),
                sim::percentile(all, 10.0), sim::percentile(all, 90.0), opt.sweep.trials);
    char metric[32];
    std::snprintf(metric, sizeof(metric), "sinr_db_nodes_%d", k);
    report.add_metric(metric, all);
    wall_s += sweep.wall_s;
    total_trials += sweep.trials.size();
  }

  std::puts("\nnote: our TMA model is a uniform 8-element array (-13 dB sidelobes),");
  std::puts("so SDM-shared nodes cap a few dB lower than the paper's post-processed");
  std::puts("combination; the shape (slight decline, robust links at 20 nodes) holds.");

  const sim::SweepRunner resolved(opt.sweep);
  bench::report_timing_line(total_trials, resolved.threads(), wall_s,
                            wall_s > 0.0 ? static_cast<double>(total_trials) / wall_s : 0.0);
  report.set_timing(total_trials, resolved.threads(), wall_s,
                    wall_s > 0.0 ? static_cast<double>(total_trials) / wall_s : 0.0);
  return report.write() ? 0 : 1;
}
