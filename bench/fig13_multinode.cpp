// Figure 13: SNR at the AP versus number of simultaneously transmitting
// nodes (1, 2, 5, 10, 20).
//
// Paper (§9.5): random placements, 100 trials; FDM carries the first
// nodes, SDM (TMA) absorbs the overflow; "even when 20 sensors transmit
// simultaneously, their average SNR is higher than 29 dB" with only a
// slight decrease versus the single-node case.
#include <cstdio>
#include <vector>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/sim/network_sim.hpp"
#include "mmx/sim/stats.hpp"

using namespace mmx;

int main() {
  std::puts("=== Figure 13: multi-node SINR vs number of simultaneous nodes ===");
  std::puts("paper: avg > 29 dB even at 20 nodes; slight decline with load\n");
  std::puts("  nodes   mean SINR [dB]   p10 [dB]   p90 [dB]   trials");

  Rng rng(99);
  const int kTrials = 100;
  for (int k : {1, 2, 5, 10, 20}) {
    std::vector<double> all;
    for (int trial = 0; trial < kTrials; ++trial) {
      sim::NetworkSimulator net(channel::Room(6.0, 4.0), channel::Pose{{5.7, 2.0}, kPi});
      int placed = 0;
      int attempts = 0;
      // The AP's admission control may deny an unservable bearing; like
      // the paper's experimenters we re-place such a node elsewhere.
      while (placed < k && attempts < 50 * k) {
        ++attempts;
        const channel::Pose pose{{rng.uniform(0.4, 5.2), rng.uniform(0.4, 3.6)},
                                 deg_to_rad(rng.uniform(-60.0, 60.0))};
        if (net.add_node(pose, 20e6)) ++placed;
      }
      for (const auto& [id, sinr] : net.sinr_all_db()) all.push_back(sinr);
    }
    std::printf("  %5d   %14.1f   %8.1f   %8.1f   %6d\n", k, sim::mean(all),
                sim::percentile(all, 10.0), sim::percentile(all, 90.0), kTrials);
  }

  std::puts("\nnote: our TMA model is a uniform 8-element array (-13 dB sidelobes),");
  std::puts("so SDM-shared nodes cap a few dB lower than the paper's post-processed");
  std::puts("combination; the shape (slight decline, robust links at 20 nodes) holds.");
  return 0;
}
