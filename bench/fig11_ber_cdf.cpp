// Figure 11: CDF of BER, without vs with OTAM.
//
// Paper method (§9.3): measure SNR at 30 random placements in the same
// furnished testbed as Fig. 10, convert to BER via standard ASK tables.
// Results: w/o OTAM median 1e-5 and 90th percentile 0.3; w/ OTAM median
// 1e-12 and 90th percentile 1e-3.
//
// Parallel sweep: placements are drawn in one serial pass over the root
// Rng — the exact draw order of the original serial loop, so the default
// `--trials 30` reproduces the historical figure bit-for-bit — and the
// per-placement ray trace + mode comparison fans across the pool.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "mmx/baseline/fixed_beam.hpp"
#include "mmx/channel/blockage.hpp"
#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/phy/ber.hpp"
#include "mmx/sim/stats.hpp"
#include "mmx/sim/sweep.hpp"

#include "harness.hpp"
#include "testbed.hpp"

using namespace mmx;

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_args(argc, argv, 30, 11, "random node placements");
  const channel::Pose ap = bench::lab_ap_pose();
  const antenna::MmxBeamPair beams;
  const antenna::Dipole ap_antenna;
  const sim::LinkBudget budget;
  const rf::SpdtSwitch spdt;

  struct Placement {
    Vec2 pos;
    double orientation_rad;
  };
  Rng rng(opt.sweep.seed);
  std::vector<Placement> placements(opt.sweep.trials);
  for (Placement& p : placements) {
    p.pos = Vec2{rng.uniform(0.5, 3.5), rng.uniform(0.3, 4.8)};
    const double toward_ap = (ap.position - p.pos).angle();
    p.orientation_rad = toward_ap + deg_to_rad(rng.uniform(-60.0, 60.0));
  }

  struct TrialBer {
    double with_otam;
    double without_otam;
  };
  sim::SweepRunner runner(opt.sweep);
  const auto sweep = runner.run([&](std::size_t i, Rng&) {
    const Placement& p = placements[i];
    channel::Room room = bench::furnished_lab();
    bench::park_person(room, p.pos, ap.position);
    const channel::RayTracer tracer(room);
    const channel::Pose node{p.pos, p.orientation_rad};
    const auto modes =
        baseline::compare_modes_avg(tracer, node, beams, ap, ap_antenna, 24.125e9, budget, spdt);
    return TrialBer{std::max(phy::kBerFloor, modes.with_otam.joint_ber),
                    std::max(phy::kBerFloor, modes.without_otam.joint_ber)};
  });

  std::vector<double> ber_with;
  std::vector<double> ber_without;
  ber_with.reserve(sweep.trials.size());
  ber_without.reserve(sweep.trials.size());
  for (const TrialBer& t : sweep.trials) {
    ber_with.push_back(t.with_otam);
    ber_without.push_back(t.without_otam);
  }

  std::printf("=== Figure 11: BER CDF, without vs with OTAM (%zu placements) ===\n",
              opt.sweep.trials);
  std::puts("paper: w/o OTAM median 1e-5, 90th pct 0.3 | w/ OTAM median 1e-12, 90th pct 1e-3\n");
  std::puts("  BER threshold   CDF w/o OTAM   CDF w/ OTAM");
  for (double exp10 = -15.0; exp10 <= 0.0; exp10 += 1.0) {
    const double x = std::pow(10.0, exp10);
    std::printf("  %13.0e   %12.2f   %11.2f\n", x, sim::ecdf(ber_without, x),
                sim::ecdf(ber_with, x));
  }

  std::puts("\n--- summary (paper -> measured) ---");
  std::printf("w/o OTAM median BER: 1e-5  -> %.1e\n", sim::median(ber_without));
  std::printf("w/o OTAM 90th pct:   0.3   -> %.1e\n", sim::percentile(ber_without, 90.0));
  std::printf("w/  OTAM median BER: 1e-12 -> %.1e\n", sim::median(ber_with));
  std::printf("w/  OTAM 90th pct:   1e-3  -> %.1e\n", sim::percentile(ber_with, 90.0));

  bench::report_timing(sweep);
  bench::JsonReport report("fig11_ber_cdf", opt);
  report.record(sweep);
  report.add_metric("ber_with_otam", ber_with);
  report.add_metric("ber_without_otam", ber_without);
  return report.write() ? 0 : 1;
}
