// Figure 11: CDF of BER, without vs with OTAM.
//
// Paper method (§9.3): measure SNR at 30 random placements in the same
// furnished testbed as Fig. 10, convert to BER via standard ASK tables.
// Results: w/o OTAM median 1e-5 and 90th percentile 0.3; w/ OTAM median
// 1e-12 and 90th percentile 1e-3.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "mmx/baseline/fixed_beam.hpp"
#include "mmx/channel/blockage.hpp"
#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/phy/ber.hpp"
#include "testbed.hpp"
#include "mmx/sim/stats.hpp"

#include "testbed.hpp"

using namespace mmx;

int main() {
  Rng rng(11);
  const channel::Pose ap = bench::lab_ap_pose();
  antenna::MmxBeamPair beams;
  antenna::Dipole ap_antenna;
  sim::LinkBudget budget;
  rf::SpdtSwitch spdt;

  std::vector<double> ber_with;
  std::vector<double> ber_without;
  const int kPlacements = 30;  // as in the paper
  for (int i = 0; i < kPlacements; ++i) {
    const Vec2 pos{rng.uniform(0.5, 3.5), rng.uniform(0.3, 4.8)};
    channel::Room room = bench::furnished_lab();
    bench::park_person(room, pos, ap.position);
    channel::RayTracer tracer(room);
    const double toward_ap = (ap.position - pos).angle();
    const channel::Pose node{pos, toward_ap + deg_to_rad(rng.uniform(-60.0, 60.0))};
    const auto modes =
        baseline::compare_modes_avg(tracer, node, beams, ap, ap_antenna, 24.125e9, budget, spdt);
    ber_with.push_back(std::max(phy::kBerFloor, modes.with_otam.joint_ber));
    ber_without.push_back(std::max(phy::kBerFloor, modes.without_otam.joint_ber));
  }

  std::puts("=== Figure 11: BER CDF, without vs with OTAM (30 placements) ===");
  std::puts("paper: w/o OTAM median 1e-5, 90th pct 0.3 | w/ OTAM median 1e-12, 90th pct 1e-3\n");
  std::puts("  BER threshold   CDF w/o OTAM   CDF w/ OTAM");
  for (double exp10 = -15.0; exp10 <= 0.0; exp10 += 1.0) {
    const double x = std::pow(10.0, exp10);
    std::printf("  %13.0e   %12.2f   %11.2f\n", x, sim::ecdf(ber_without, x),
                sim::ecdf(ber_with, x));
  }

  std::puts("\n--- summary (paper -> measured) ---");
  std::printf("w/o OTAM median BER: 1e-5  -> %.1e\n", sim::median(ber_without));
  std::printf("w/o OTAM 90th pct:   0.3   -> %.1e\n", sim::percentile(ber_without, 90.0));
  std::printf("w/  OTAM median BER: 1e-12 -> %.1e\n", sim::median(ber_with));
  std::printf("w/  OTAM 90th pct:   1e-3  -> %.1e\n", sim::percentile(ber_with, 90.0));
  return 0;
}
