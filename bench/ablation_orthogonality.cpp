// Ablation: orthogonal vs non-orthogonal beam pair (§6.2, Fig. 5).
//
// The design question the paper answers with Fig. 5: if the two beams
// are not orthogonal, how often do the two OTAM levels collide (contrast
// too small to decode by ASK)? We compare the paper's pair against a
// deliberately non-orthogonal pair (both beams in phase, slightly
// different spacings) over random placements, with and without blockage.
//
// Parallel sweep: placements are drawn in one serial pass over the root
// Rng (the original loop's draw order, so the default `--trials 2000`
// reproduces the historical numbers bit-for-bit); the per-placement ray
// traces fan across the pool.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "mmx/antenna/array.hpp"
#include "mmx/channel/beam_channel.hpp"
#include "mmx/channel/blockage.hpp"
#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/sim/sweep.hpp"

#include "harness.hpp"
#include "testbed.hpp"

using namespace mmx;

namespace {

/// Fading-averaged contrast between two transmit patterns (incoherent
/// path-power sums — the level a time-averaged measurement sees).
double contrast_db(const channel::RayTracer& tracer, const channel::Pose& node,
                   const antenna::LinearArray& a0, const antenna::LinearArray& a1,
                   const channel::Pose& ap, const antenna::Element& ap_ant) {
  double p0 = 0.0;
  double p1 = 0.0;
  for (const auto& path : tracer.trace(node.position, ap.position)) {
    const double dep = wrap_angle(path.departure_rad - node.orientation_rad);
    const double arr = wrap_angle(path.arrival_rad - ap.orientation_rad);
    const double a = std::abs(channel::RayTracer::path_amplitude(path, 24.125e9)) *
                     ap_ant.amplitude(arr);
    p0 += std::norm(a0.field(dep)) * a * a;
    p1 += std::norm(a1.field(dep)) * a * a;
  }
  if (p0 <= 0.0 || p1 <= 0.0) return 200.0;
  return std::abs(lin_to_db(p1 / p0));
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_args(argc, argv, 2000, 5, "random node placements");
  const channel::Pose ap = bench::lab_ap_pose();
  const antenna::Dipole ap_ant;
  const double f = 24.125e9;
  const double lambda = wavelength(f);
  auto patch = std::make_shared<antenna::Patch>(6.0);
  const double a = 1.0 / std::sqrt(2.0);

  // Paper's orthogonal pair: in-phase + anti-phase at d = lambda.
  antenna::LinearArray orth1(patch, lambda, {{a, 0.0}, {a, 0.0}}, f);
  antenna::LinearArray orth0(patch, lambda, {{a, 0.0}, {-a, 0.0}}, f);
  // Non-orthogonal strawman (Fig. 5a): two similar in-phase beams with
  // slightly different spacings — both peak broadside.
  antenna::LinearArray non1(patch, lambda, {{a, 0.0}, {a, 0.0}}, f);
  antenna::LinearArray non0(patch, 0.8 * lambda, {{a, 0.0}, {a, 0.0}}, f);

  const std::size_t trials = opt.sweep.trials;
  const double kAmbiguous_db = 1.5;  // below ~1.5 dB of contrast ASK is unreliable

  // Serial pre-pass in the original loop's draw order: position, blocked
  // coin, orientation offset per trial.
  struct Placement {
    Vec2 pos;
    bool blocked;
    double orientation_rad;
  };
  Rng rng(opt.sweep.seed);
  std::vector<Placement> placements(trials);
  for (Placement& p : placements) {
    p.pos = Vec2{rng.uniform(0.5, 3.5), rng.uniform(0.3, 4.8)};
    p.blocked = rng.chance(0.5);
    const double toward_ap = (ap.position - p.pos).angle();
    p.orientation_rad = toward_ap + deg_to_rad(rng.uniform(-60.0, 60.0));
  }

  struct Ambiguity {
    int orth;
    int non;
  };
  sim::SweepRunner runner(opt.sweep);
  const auto sweep = runner.run([&](std::size_t i, Rng&) {
    const Placement& p = placements[i];
    channel::Room room = bench::furnished_lab();
    if (p.blocked) bench::park_person(room, p.pos, ap.position);
    const channel::RayTracer tracer(room);
    const channel::Pose node{p.pos, p.orientation_rad};
    return Ambiguity{contrast_db(tracer, node, orth0, orth1, ap, ap_ant) < kAmbiguous_db ? 1 : 0,
                     contrast_db(tracer, node, non0, non1, ap, ap_ant) < kAmbiguous_db ? 1 : 0};
  });
  int ambiguous_orth = 0;
  int ambiguous_non = 0;
  for (const Ambiguity& a : sweep.trials) {
    ambiguous_orth += a.orth;
    ambiguous_non += a.non;
  }

  std::puts("=== Ablation: orthogonal vs non-orthogonal beam patterns (Fig. 5) ===");
  std::puts("paper: orthogonality 'reduces the probability of getting similar losses'");
  std::printf("ambiguity threshold: contrast < %.0f dB over %zu random placements\n\n",
              kAmbiguous_db, trials);
  std::printf("  non-orthogonal pair ambiguous: %5.1f%%\n",
              100.0 * ambiguous_non / static_cast<double>(trials));
  std::printf("  orthogonal pair ambiguous:     %5.1f%%   (paper: <10%% residual, absorbed by FSK)\n",
              100.0 * ambiguous_orth / static_cast<double>(trials));

  bench::report_timing(sweep);
  bench::JsonReport report("ablation_orthogonality", opt);
  report.record(sweep);
  report.add_scalar("ambiguous_frac_orthogonal",
                    static_cast<double>(ambiguous_orth) / static_cast<double>(trials));
  report.add_scalar("ambiguous_frac_non_orthogonal",
                    static_cast<double>(ambiguous_non) / static_cast<double>(trials));
  return report.write() ? 0 : 1;
}
