// Ablation: TMA vs Hybrid MIMO at the AP for spatial multiplexing
// (paper §7b's two options, quantified).
//
// Hybrid MIMO separates co-channel nodes with independent digital beams
// (better SIR); the TMA does it with one RF chain and N switches (a
// fraction of the power and cost). This bench prints the trade the paper
// resolves in the TMA's favour for IoT.
#include <cstdio>
#include <vector>

#include "mmx/antenna/tma.hpp"
#include "mmx/baseline/hybrid_mimo.hpp"
#include "mmx/common/units.hpp"
#include "mmx/rf/budget.hpp"

using namespace mmx;

int main() {
  std::puts("=== Ablation: SDM receiver — Time-Modulated Array vs Hybrid MIMO ===\n");

  auto tma = antenna::TimeModulatedArray::progressive(
      antenna::TmaSpec{.num_elements = 8}, 0.0625, 0.45);
  baseline::HybridMimoAp mimo;

  std::puts("  co-channel nodes    TMA min SIR    MIMO min SIR");
  for (int k : {2, 3, 4}) {
    std::vector<double> bearings;
    std::vector<int> harmonics;
    // Nodes near every other TMA slot, with a realistic ~2 degree
    // placement offset so neither receiver sits in an exact pattern null.
    for (int i = 0; i < k; ++i) {
      const int m = (i - k / 2) * 2;
      bearings.push_back(tma.steered_angle(m) + 0.035 * ((i % 2 == 0) ? 1.0 : -1.0));
      harmonics.push_back(m);
    }
    const double tma_sir = tma.demux_sir_db(bearings, harmonics);
    const double mimo_sir = mimo.plan(bearings).min_sir_db;
    std::printf("  %16d    %8.1f dB    %9.1f dB\n", k, tma_sir, mimo_sir);
  }

  const double tma_power = 0.5;  // one mmX receive chain + switch drivers
  std::puts("\n  receiver            power        component cost");
  std::printf("  TMA (1 chain)     %5.1f W        ~$%.0f (mmX AP BoM)\n", tma_power,
              rf::mmx_ap_budget().total_cost_usd());
  std::printf("  hybrid MIMO       %5.1f W        ~$%.0f (%zu chains x %zu elements)\n",
              mimo.total_power_w(), mimo.total_cost_usd(), mimo.spec().num_chains,
              mimo.spec().elements_per_chain);

  std::puts("\npaper's §7b verdict: hybrid MIMO matches (or with more elements beats)");
  std::puts("the TMA's separation and scales past the harmonic budget — but it needs");
  std::puts("one full mmWave chain per co-channel node: \"power hungry and costly\".");
  return 0;
}
