// Scale lane: 10^4-node join/leave/move/block churn (docs/SCALING.md).
//
// Runs the ScaleScenario — a V-band AP serving `--nodes` things under
// crowd blockage and population churn — and reports steady-state link
// measurement throughput. The same scenario runs with the link cache on
// (default) or off (`--cache off`); every simulated quantity is
// bit-identical between the two arms (pinned by tests/sim/
// scale_scenario_test.cpp), so the JSON reports differ only in timing
// and tools/sweep_gate can gate the cached arm's speedup:
//
//   scale_churn --cache off --json base.json
//   scale_churn --cache on  --json cached.json
//   sweep_gate base.json cached.json --min-speedup 5
//
// JSON semantics: "trials" = total link measurements, "trials_per_s" =
// measurements per second of measurement-phase wall clock (join storms
// and event bookkeeping excluded — they are identical in both arms and
// are not what the cache accelerates).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "mmx/sim/scale_scenario.hpp"
#include "mmx/sim/sweep.hpp"

#include "harness.hpp"

using namespace mmx;

int main(int argc, char** argv) {
  std::string nodes_arg = "10000";
  std::string cache_arg = "on";
  std::string faults_arg = "off";
  std::string overload_arg = "off";
  const bench::Options opt = bench::parse_args(
      argc, argv, 128, 4242, "measurement rounds (0.0625 s apart)",
      {{"--nodes", "N   resident things (default 10000)", &nodes_arg},
       {"--cache", "on|off   evaluate links through the LinkCache (default on)", &cache_arg},
       {"--faults", "on|off   inject the default fault storm (default off)", &faults_arg},
       {"--overload", "on|off   run the pinned 3x oversubscription lane "
                      "(make_overload_config; ignores --nodes; default off)", &overload_arg}});

  char* end = nullptr;
  const unsigned long long nodes = std::strtoull(nodes_arg.c_str(), &end, 10);
  if (end == nodes_arg.c_str() || *end != '\0' || nodes == 0) {
    std::fprintf(stderr, "scale_churn: --nodes expects a positive integer, got '%s'\n",
                 nodes_arg.c_str());
    return 2;
  }
  if (cache_arg != "on" && cache_arg != "off") {
    std::fprintf(stderr, "scale_churn: --cache expects on|off, got '%s'\n", cache_arg.c_str());
    return 2;
  }
  if (faults_arg != "on" && faults_arg != "off") {
    std::fprintf(stderr, "scale_churn: --faults expects on|off, got '%s'\n", faults_arg.c_str());
    return 2;
  }
  if (overload_arg != "on" && overload_arg != "off") {
    std::fprintf(stderr, "scale_churn: --overload expects on|off, got '%s'\n",
                 overload_arg.c_str());
    return 2;
  }
  const bool faults_on = faults_arg == "on";
  const bool overload_on = overload_arg == "on";

  sim::ScaleConfig cfg = overload_on ? sim::make_overload_config()
                                     : sim::make_scale_config(static_cast<std::size_t>(nodes));
  cfg.use_cache = cache_arg == "on";
  cfg.refresh_threads = opt.sweep.threads;
  cfg.duration_s = cfg.measure_interval_s * static_cast<double>(opt.sweep.trials);
  cfg.join_window_s = std::min(cfg.join_window_s, cfg.duration_s);
  if (faults_on) cfg.faults = sim::make_fault_storm();

  std::printf("=== Scale churn: %zu things, cache %s, faults %s, overload %s ===\n", cfg.nodes,
              cache_arg.c_str(), faults_arg.c_str(), overload_arg.c_str());
  const sim::ScaleScenario scenario(cfg);
  const sim::ScaleReport rep = scenario.run(opt.sweep.seed);

  std::printf("  joins %zu (granted %zu, denied %zu)  leaves %zu  moves %zu\n", rep.joins,
              rep.granted, rep.denied, rep.leaves, rep.moves);
  std::printf("  rounds %zu  link evals %zu  crowd updates %zu\n", rep.measure_rounds,
              rep.link_evals, rep.blocker_updates);
  std::printf("  cache: refills %zu  hit rate %.3f  revalidated %llu  invalidated %llu\n",
              rep.cache_refills, rep.cache.hit_rate(),
              static_cast<unsigned long long>(rep.cache.revalidated),
              static_cast<unsigned long long>(rep.cache.invalidated));
  std::printf("  links: mean SNR %.1f dB  mean joint BER %.2e  mean rate %.2f Mbps\n",
              rep.mean_snr_db, rep.mean_joint_ber, rep.mean_rate_bps / 1e6);
  std::printf("  ARQ: tx %llu  delivered %llu  gave up %llu  delivery %.4f\n",
              static_cast<unsigned long long>(rep.arq.transmissions),
              static_cast<unsigned long long>(rep.arq.delivered),
              static_cast<unsigned long long>(rep.arq.gave_up), rep.delivery_ratio);
  const double mean_recovery_rounds =
      rep.faults.recoveries > 0
          ? static_cast<double>(rep.faults.recovery_rounds_sum) /
                static_cast<double>(rep.faults.recoveries)
          : 0.0;
  if (faults_on) {
    std::printf("  faults: storms %llu  cycles %llu  revoked %llu  acks lost %llu\n",
                static_cast<unsigned long long>(rep.faults.storms),
                static_cast<unsigned long long>(rep.faults.power_cycles),
                static_cast<unsigned long long>(rep.faults.revocations),
                static_cast<unsigned long long>(rep.faults.acks_lost));
    std::printf("  recovery: reaped %llu  escalations %llu  rejoins %llu"
                "  recovered %llu (mean %.1f rounds)\n",
                static_cast<unsigned long long>(rep.faults.reaped),
                static_cast<unsigned long long>(rep.faults.escalations),
                static_cast<unsigned long long>(rep.faults.rejoin_attempts),
                static_cast<unsigned long long>(rep.faults.recoveries), mean_recovery_rounds);
  }
  if (overload_on) {
    std::printf("  overload: demoted %llu  shed %llu  promoted %llu  compactions %llu"
                "  retunes %llu\n",
                static_cast<unsigned long long>(rep.overload.demotions),
                static_cast<unsigned long long>(rep.overload.shed_demotions),
                static_cast<unsigned long long>(rep.overload.promotions),
                static_cast<unsigned long long>(rep.overload.compactions),
                static_cast<unsigned long long>(rep.overload.retunes));
    std::printf("  admission: admitted %zu (%zu below request)  hinted denies %llu"
                "  backoff retries %llu\n",
                rep.overload.admitted, rep.overload.admitted_below_request,
                static_cast<unsigned long long>(rep.overload.hinted_denies),
                static_cast<unsigned long long>(rep.overload.backoff_retries));
    std::printf("  rates: min %.0f bps (floor %.0f)  mean %.0f bps  invariant violations %llu\n",
                rep.overload.min_admitted_rate_bps, cfg.sim.init.overload.min_rate_bps,
                rep.overload.mean_admitted_rate_bps,
                static_cast<unsigned long long>(rep.overload.invariant_violations));
  }

  const double per_s = rep.measure_wall_s > 0.0
                           ? static_cast<double>(rep.link_evals) / rep.measure_wall_s
                           : 0.0;
  const std::size_t threads = sim::SweepRunner(opt.sweep).threads();
  bench::report_timing_line(rep.link_evals, threads, rep.measure_wall_s, per_s);

  const char* bench_name = overload_on ? (faults_on ? "scale_churn_overload_faults"
                                                    : "scale_churn_overload")
                                       : (faults_on ? "scale_churn_faults" : "scale_churn");
  bench::JsonReport report(bench_name, opt);
  report.set_timing(rep.link_evals, threads, rep.measure_wall_s, per_s);
  report.add_scalar("nodes", static_cast<double>(cfg.nodes));
  report.add_scalar("cache_on", cfg.use_cache ? 1.0 : 0.0);
  report.add_scalar("faults_on", faults_on ? 1.0 : 0.0);
  report.add_scalar("overload_on", overload_on ? 1.0 : 0.0);
  report.add_scalar("granted", static_cast<double>(rep.granted));
  report.add_scalar("denied", static_cast<double>(rep.denied));
  report.add_scalar("leaves", static_cast<double>(rep.leaves));
  report.add_scalar("moves", static_cast<double>(rep.moves));
  report.add_scalar("cache_refills", static_cast<double>(rep.cache_refills));
  report.add_scalar("cache_hit_rate", rep.cache.hit_rate());
  report.add_scalar("mean_snr_db", rep.mean_snr_db);
  report.add_scalar("mean_joint_ber", rep.mean_joint_ber);
  report.add_scalar("mean_rate_bps", rep.mean_rate_bps);
  report.add_scalar("delivery_ratio", rep.delivery_ratio);
  if (faults_on) {
    report.add_scalar("fault_storms", static_cast<double>(rep.faults.storms));
    report.add_scalar("fault_power_cycles", static_cast<double>(rep.faults.power_cycles));
    report.add_scalar("fault_revocations", static_cast<double>(rep.faults.revocations));
    report.add_scalar("fault_reaped", static_cast<double>(rep.faults.reaped));
    report.add_scalar("fault_escalations", static_cast<double>(rep.faults.escalations));
    report.add_scalar("fault_rejoins", static_cast<double>(rep.faults.rejoin_attempts));
    report.add_scalar("fault_recoveries", static_cast<double>(rep.faults.recoveries));
    report.add_scalar("mean_recovery_rounds", mean_recovery_rounds);
  }
  if (overload_on) {
    report.add_scalar("ov_demotions", static_cast<double>(rep.overload.demotions));
    report.add_scalar("ov_shed_demotions", static_cast<double>(rep.overload.shed_demotions));
    report.add_scalar("ov_promotions", static_cast<double>(rep.overload.promotions));
    report.add_scalar("ov_compactions", static_cast<double>(rep.overload.compactions));
    report.add_scalar("ov_retunes", static_cast<double>(rep.overload.retunes));
    report.add_scalar("ov_hinted_denies", static_cast<double>(rep.overload.hinted_denies));
    report.add_scalar("ov_backoff_retries", static_cast<double>(rep.overload.backoff_retries));
    report.add_scalar("ov_invariant_violations",
                      static_cast<double>(rep.overload.invariant_violations));
    report.add_scalar("ov_admitted", static_cast<double>(rep.overload.admitted));
    report.add_scalar("ov_admitted_below_request",
                      static_cast<double>(rep.overload.admitted_below_request));
    report.add_scalar("ov_min_admitted_rate_bps", rep.overload.min_admitted_rate_bps);
    report.add_scalar("ov_mean_admitted_rate_bps", rep.overload.mean_admitted_rate_bps);
    report.add_scalar("ov_rate_floor_bps", cfg.sim.init.overload.min_rate_bps);
  }
  return report.write() ? 0 : 1;
}
