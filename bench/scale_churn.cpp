// Scale lane: 10^4-node join/leave/move/block churn (docs/SCALING.md).
//
// Runs the ScaleScenario — a V-band AP serving `--nodes` things under
// crowd blockage and population churn — and reports steady-state link
// measurement throughput. The same scenario runs with the link cache on
// (default) or off (`--cache off`); every simulated quantity is
// bit-identical between the two arms (pinned by tests/sim/
// scale_scenario_test.cpp), so the JSON reports differ only in timing
// and tools/sweep_gate can gate the cached arm's speedup:
//
//   scale_churn --cache off --json base.json
//   scale_churn --cache on  --json cached.json
//   sweep_gate base.json cached.json --min-speedup 5
//
// JSON semantics: "trials" = total link measurements, "trials_per_s" =
// measurements per second of measurement-phase wall clock (join storms
// and event bookkeeping excluded — they are identical in both arms and
// are not what the cache accelerates).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "mmx/sim/scale_scenario.hpp"
#include "mmx/sim/sweep.hpp"

#include "harness.hpp"

using namespace mmx;

int main(int argc, char** argv) {
  std::string nodes_arg = "10000";
  std::string cache_arg = "on";
  std::string faults_arg = "off";
  const bench::Options opt = bench::parse_args(
      argc, argv, 128, 4242, "measurement rounds (0.0625 s apart)",
      {{"--nodes", "N   resident things (default 10000)", &nodes_arg},
       {"--cache", "on|off   evaluate links through the LinkCache (default on)", &cache_arg},
       {"--faults", "on|off   inject the default fault storm (default off)", &faults_arg}});

  char* end = nullptr;
  const unsigned long long nodes = std::strtoull(nodes_arg.c_str(), &end, 10);
  if (end == nodes_arg.c_str() || *end != '\0' || nodes == 0) {
    std::fprintf(stderr, "scale_churn: --nodes expects a positive integer, got '%s'\n",
                 nodes_arg.c_str());
    return 2;
  }
  if (cache_arg != "on" && cache_arg != "off") {
    std::fprintf(stderr, "scale_churn: --cache expects on|off, got '%s'\n", cache_arg.c_str());
    return 2;
  }
  if (faults_arg != "on" && faults_arg != "off") {
    std::fprintf(stderr, "scale_churn: --faults expects on|off, got '%s'\n", faults_arg.c_str());
    return 2;
  }
  const bool faults_on = faults_arg == "on";

  sim::ScaleConfig cfg = sim::make_scale_config(static_cast<std::size_t>(nodes));
  cfg.use_cache = cache_arg == "on";
  cfg.refresh_threads = opt.sweep.threads;
  cfg.duration_s = cfg.measure_interval_s * static_cast<double>(opt.sweep.trials);
  cfg.join_window_s = std::min(cfg.join_window_s, cfg.duration_s);
  if (faults_on) cfg.faults = sim::make_fault_storm();

  std::printf("=== Scale churn: %llu things, cache %s, faults %s ===\n", nodes,
              cache_arg.c_str(), faults_arg.c_str());
  const sim::ScaleScenario scenario(cfg);
  const sim::ScaleReport rep = scenario.run(opt.sweep.seed);

  std::printf("  joins %zu (granted %zu, denied %zu)  leaves %zu  moves %zu\n", rep.joins,
              rep.granted, rep.denied, rep.leaves, rep.moves);
  std::printf("  rounds %zu  link evals %zu  crowd updates %zu\n", rep.measure_rounds,
              rep.link_evals, rep.blocker_updates);
  std::printf("  cache: refills %zu  hit rate %.3f  revalidated %llu  invalidated %llu\n",
              rep.cache_refills, rep.cache.hit_rate(),
              static_cast<unsigned long long>(rep.cache.revalidated),
              static_cast<unsigned long long>(rep.cache.invalidated));
  std::printf("  links: mean SNR %.1f dB  mean joint BER %.2e  mean rate %.2f Mbps\n",
              rep.mean_snr_db, rep.mean_joint_ber, rep.mean_rate_bps / 1e6);
  std::printf("  ARQ: tx %llu  delivered %llu  gave up %llu  delivery %.4f\n",
              static_cast<unsigned long long>(rep.arq.transmissions),
              static_cast<unsigned long long>(rep.arq.delivered),
              static_cast<unsigned long long>(rep.arq.gave_up), rep.delivery_ratio);
  const double mean_recovery_rounds =
      rep.faults.recoveries > 0
          ? static_cast<double>(rep.faults.recovery_rounds_sum) /
                static_cast<double>(rep.faults.recoveries)
          : 0.0;
  if (faults_on) {
    std::printf("  faults: storms %llu  cycles %llu  revoked %llu  acks lost %llu\n",
                static_cast<unsigned long long>(rep.faults.storms),
                static_cast<unsigned long long>(rep.faults.power_cycles),
                static_cast<unsigned long long>(rep.faults.revocations),
                static_cast<unsigned long long>(rep.faults.acks_lost));
    std::printf("  recovery: reaped %llu  escalations %llu  rejoins %llu"
                "  recovered %llu (mean %.1f rounds)\n",
                static_cast<unsigned long long>(rep.faults.reaped),
                static_cast<unsigned long long>(rep.faults.escalations),
                static_cast<unsigned long long>(rep.faults.rejoin_attempts),
                static_cast<unsigned long long>(rep.faults.recoveries), mean_recovery_rounds);
  }

  const double per_s = rep.measure_wall_s > 0.0
                           ? static_cast<double>(rep.link_evals) / rep.measure_wall_s
                           : 0.0;
  const std::size_t threads = sim::SweepRunner(opt.sweep).threads();
  bench::report_timing_line(rep.link_evals, threads, rep.measure_wall_s, per_s);

  bench::JsonReport report(faults_on ? "scale_churn_faults" : "scale_churn", opt);
  report.set_timing(rep.link_evals, threads, rep.measure_wall_s, per_s);
  report.add_scalar("nodes", static_cast<double>(nodes));
  report.add_scalar("cache_on", cfg.use_cache ? 1.0 : 0.0);
  report.add_scalar("faults_on", faults_on ? 1.0 : 0.0);
  report.add_scalar("granted", static_cast<double>(rep.granted));
  report.add_scalar("denied", static_cast<double>(rep.denied));
  report.add_scalar("leaves", static_cast<double>(rep.leaves));
  report.add_scalar("moves", static_cast<double>(rep.moves));
  report.add_scalar("cache_refills", static_cast<double>(rep.cache_refills));
  report.add_scalar("cache_hit_rate", rep.cache.hit_rate());
  report.add_scalar("mean_snr_db", rep.mean_snr_db);
  report.add_scalar("mean_joint_ber", rep.mean_joint_ber);
  report.add_scalar("mean_rate_bps", rep.mean_rate_bps);
  report.add_scalar("delivery_ratio", rep.delivery_ratio);
  if (faults_on) {
    report.add_scalar("fault_storms", static_cast<double>(rep.faults.storms));
    report.add_scalar("fault_power_cycles", static_cast<double>(rep.faults.power_cycles));
    report.add_scalar("fault_revocations", static_cast<double>(rep.faults.revocations));
    report.add_scalar("fault_reaped", static_cast<double>(rep.faults.reaped));
    report.add_scalar("fault_escalations", static_cast<double>(rep.faults.escalations));
    report.add_scalar("fault_rejoins", static_cast<double>(rep.faults.rejoin_attempts));
    report.add_scalar("fault_recoveries", static_cast<double>(rep.faults.recoveries));
    report.add_scalar("mean_recovery_rounds", mean_recovery_rounds);
  }
  return report.write() ? 0 : 1;
}
