// Shared CLI + JSON reporting for the sweep-based benches.
//
// Every Monte-Carlo bench accepts the same flags:
//   --trials N    sweep size (per-bench meaning documented in --help)
//   --threads K   worker threads (0 = one per hardware thread)
//   --seed S      root seed (trial i draws from Rng::stream(S, i))
//   --json PATH   write a machine-readable report (metric summaries,
//                 wall-clock, throughput) for CI's perf lane
//   --obs         enable mmx::obs collection; the JSON report gains an
//                 "obs" block (counters, histograms, prometheus text)
//   --trace PATH  write the merged trace as chrome://tracing JSON
//                 (implies --obs)
//
// Figure output goes to stdout exactly as before (byte-identical at the
// historical defaults); sweep timing goes to stderr so redirected figure
// text never changes with thread count or machine speed. Without --obs
// the report is byte-identical to an uninstrumented build's.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mmx/sim/sweep.hpp"

namespace mmx::bench {

struct Options {
  sim::SweepConfig sweep;
  std::string json_path;   // empty = no JSON report
  std::string trace_path;  // empty = no chrome trace (--trace sets it)
  bool obs = false;        // runtime obs collection (--obs / --trace)
};

/// A bench-specific flag on top of the shared set. `value` must point at
/// a string pre-loaded with the default; it receives the raw argument
/// (the bench parses/validates it). `help` is the usage line suffix.
struct ExtraFlag {
  const char* flag;    // e.g. "--nodes"
  const char* help;    // e.g. "resident things (default 10000)"
  std::string* value;  // non-owning; holds default, receives override
};

/// Parse the shared sweep flags; prints usage and exits on --help or a
/// malformed/unknown argument.
Options parse_args(int argc, char** argv, std::size_t default_trials,
                   std::uint64_t default_seed, const char* trials_meaning = "trials");

/// Same, plus bench-specific flags (e.g. scale_churn's --nodes/--cache).
Options parse_args(int argc, char** argv, std::size_t default_trials,
                   std::uint64_t default_seed, const char* trials_meaning,
                   const std::vector<ExtraFlag>& extras);

void report_timing_line(std::size_t trials, std::size_t threads_used, double wall_s,
                        double trials_per_s);

/// Print the "[sweep] trials=.. threads=.. wall=..s (.. trials/s)" line
/// to stderr (stderr so stdout stays byte-stable across machines).
template <typename T>
void report_timing(const sim::SweepResult<T>& result) {
  report_timing_line(result.trials.size(), result.threads_used, result.wall_s,
                     result.trials_per_s);
}

/// Accumulates metric summaries and writes the perf-lane JSON report.
class JsonReport {
 public:
  JsonReport(std::string bench_name, const Options& options);

  void add_metric(const std::string& name, const std::vector<double>& samples);
  void add_scalar(const std::string& name, double value);

  template <typename T>
  void record(const sim::SweepResult<T>& result) {
    set_timing(result.trials.size(), result.threads_used, result.wall_s, result.trials_per_s);
  }
  void set_timing(std::size_t trials, std::size_t threads_used, double wall_s,
                  double trials_per_s);

  /// Write to `options.json_path` if set (no-op otherwise). Returns false
  /// if the file could not be written.
  bool write() const;

 private:
  std::string bench_name_;
  std::string json_path_;
  std::string trace_path_;
  bool obs_enabled_ = false;
  std::uint64_t seed_;
  std::size_t trials_ = 0;
  std::size_t threads_used_ = 0;
  double wall_s_ = 0.0;
  double trials_per_s_ = 0.0;
  std::vector<sim::MetricSummary> metrics_;
  std::vector<std::pair<std::string, double>> scalars_;
};

}  // namespace mmx::bench
