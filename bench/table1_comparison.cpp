// Table 1: platform comparison — mmX vs MiRa, OpenMili/Pasternack, WiFi
// 802.11n, Bluetooth. The mmX row is computed live from this library's
// component budget models; the rest are the published figures.
#include <cstdio>

#include "mmx/baseline/platforms.hpp"

int main() {
  const auto rows = mmx::baseline::table1_platforms();
  std::puts("=== Table 1: comparison of mmX with existing wireless systems ===\n");
  std::printf("  %-22s %9s %9s %8s %8s %9s %10s %10s %7s\n", "platform", "carrier", "cost",
              "power", "TxPwr", "BW", "bitrate", "nJ/bit", "range");
  std::printf("  %-22s %9s %9s %8s %8s %9s %10s %10s %7s\n", "", "[GHz]", "[$]", "[W]", "[dBm]",
              "[MHz]", "[Mbps]", "", "[m]");
  for (const auto& p : rows) {
    std::printf("  %-22s %9.1f %9.0f %8.3f %8.0f %9.0f %10.0f %10.1f %7.0f\n", p.name.c_str(),
                p.carrier_hz / 1e9, p.cost_usd, p.power_w, p.tx_power_dbm, p.bandwidth_hz / 1e6,
                p.bitrate_bps / 1e6, p.energy_per_bit_nj(), p.range_m);
  }

  const auto& mmx_row = mmx::baseline::platform(rows, "mmX");
  const auto& wifi = mmx::baseline::platform(rows, "WiFi (802.11n)");
  std::puts("\n--- headline checks (paper -> measured) ---");
  std::printf("mmX node power:   1.1 W    -> %.2f W\n", mmx_row.power_w);
  std::printf("mmX node cost:    $110     -> $%.0f\n", mmx_row.cost_usd);
  std::printf("mmX energy/bit:   11 nJ/b  -> %.1f nJ/b\n", mmx_row.energy_per_bit_nj());
  std::printf("beats WiFi (17.5 nJ/b):    -> %s\n",
              mmx_row.energy_per_bit_nj() < wifi.energy_per_bit_nj() ? "YES" : "NO");
  return 0;
}
