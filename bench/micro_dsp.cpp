// Microbenchmarks (google-benchmark): throughput of the primitives the
// AP runs per received sample — the budget that decides how many nodes
// one AP CPU can demodulate in real time.
#include <benchmark/benchmark.h>

#include "mmx/channel/beam_channel.hpp"
#include "mmx/common/rng.hpp"
#include "mmx/dsp/fft.hpp"
#include "mmx/dsp/fir.hpp"
#include "mmx/dsp/goertzel.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/common/units.hpp"
#include "mmx/phy/joint.hpp"
#include "mmx/phy/otam.hpp"

using namespace mmx;

namespace {

dsp::Cvec noise_block(std::size_t n) {
  Rng rng(1);
  return dsp::awgn(n, 1.0, rng);
}

void BM_Fft(benchmark::State& state) {
  dsp::Cvec x = noise_block(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    dsp::Cvec y = x;
    dsp::fft_inplace(y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Goertzel(benchmark::State& state) {
  const dsp::Cvec x = noise_block(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::goertzel_power(x, 1e6, 16e6));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Goertzel)->Arg(16)->Arg(256);

void BM_FirFilter(benchmark::State& state) {
  dsp::FirFilter fir(dsp::design_lowpass(16e6, 2e6, 63));
  const dsp::Cvec x = noise_block(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fir.process(x).data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_FirFilter);

void BM_OtamSynthesize(benchmark::State& state) {
  Rng rng(2);
  phy::PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 16;
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;
  rf::SpdtSwitch sw;
  phy::Bits bits(1000);
  for (int& b : bits) b = rng.uniform_int(0, 1);
  const phy::OtamChannel ch{{1e-4, 0.0}, {1e-3, 0.0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(phy::otam_synthesize(bits, cfg, ch, sw).data());
  }
  state.SetItemsProcessed(state.iterations() * bits.size());
}
BENCHMARK(BM_OtamSynthesize);

void BM_JointDemodulate(benchmark::State& state) {
  Rng rng(3);
  phy::PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 16;
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;
  rf::SpdtSwitch sw;
  phy::Bits bits{1, 0, 1, 0};
  for (int i = 0; i < 1000; ++i) bits.push_back(rng.uniform_int(0, 1));
  const phy::OtamChannel ch{{1e-4, 0.0}, {1e-3, 0.0}};
  auto rx = phy::otam_synthesize(bits, cfg, ch, sw);
  dsp::add_awgn_snr(rx, 20.0, rng);
  const phy::Bits prefix{1, 0, 1, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(phy::joint_demodulate(rx, cfg, prefix).bits.data());
  }
  state.SetItemsProcessed(state.iterations() * bits.size());
}
BENCHMARK(BM_JointDemodulate);

void BM_RayTrace(benchmark::State& state) {
  channel::Room room(6.0, 4.0);
  room.add_blocker(channel::human_blocker({3.0, 2.0}));
  channel::RayTracer tracer(room);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracer.trace({1.0, 2.0}, {5.0, 2.5}));
  }
}
BENCHMARK(BM_RayTrace);

void BM_BeamGains(benchmark::State& state) {
  channel::Room room(6.0, 4.0);
  channel::RayTracer tracer(room);
  antenna::MmxBeamPair beams;
  antenna::Dipole ap_ant;
  const channel::Pose node{{1.0, 2.0}, 0.3};
  const channel::Pose ap{{5.0, 2.0}, kPi};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        channel::compute_beam_gains(tracer, node, beams, ap, ap_ant, 24.125e9));
  }
}
BENCHMARK(BM_BeamGains);

}  // namespace

BENCHMARK_MAIN();
