// Micro-benchmarks of the per-sample DSP fast path, on the shared sweep
// harness (same flags/JSON as every other bench).
//
// Two kernel sets are selectable with --kernels:
//   fast  the production path: rotator NCO/Goertzel, plan-based FFT,
//         block FIR, and the FramePipeline frame context
//   ref   the retained pre-rewrite forms (tests/reference): one cos/sin
//         pair per sample, twiddle-recurrence FFT, allocating per-call
//         demodulators
//
// --stage picks one workload for a machine-readable run (the JSON bench
// name carries the stage, so tools/sweep_gate can compare a matched
// ref/fast pair); the default `all` prints a ref-vs-fast table. CI's
// bench-perf lane gates goertzel at >= 3x and the fig11-style frame
// stage (synthesize -> AWGN -> joint demodulate at the pinned config) at
// >= 2x.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness.hpp"
#include "mmx/common/rng.hpp"
#include "mmx/dsp/fft.hpp"
#include "mmx/dsp/fir.hpp"
#include "mmx/dsp/goertzel.hpp"
#include "mmx/dsp/noise.hpp"
#include "mmx/dsp/tone.hpp"
#include "mmx/dsp/workspace.hpp"
#include "mmx/phy/pipeline.hpp"
#include "reference_kernels.hpp"

using namespace mmx;

namespace {

// Pinned fig11-style operating point (paper §9: 1 Mb/s link, ±2 MHz
// tones, 9 dB level gap between the beams, 20 dB SNR).
constexpr std::size_t kFrameBits = 1000;
constexpr double kSnrDb = 20.0;
const phy::Bits kPrefix = {1, 0, 1, 0};

phy::PhyConfig pinned_config() {
  phy::PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 16;
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;
  return cfg;
}

const phy::OtamChannel kChannel{{1e-4, 0.0}, {1e-3, 0.0}};

dsp::Cvec noise_block(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return dsp::awgn(n, 1.0, rng);
}

// Each trial returns a checksum/BER so the work cannot be optimized away
// and ref/fast runs can be sanity-compared in the JSON metrics.

double trial_goertzel(bool fast) {
  static const dsp::Cvec x = noise_block(4096, 1);
  const double fs = 16e6;
  if (fast) {
    static const dsp::GoertzelBank bank({-2e6, 2e6}, fs);
    double p[2];
    bank.measure(x, p);
    return p[0] + p[1];
  }
  return refdsp::goertzel_power(x, -2e6, fs) + refdsp::goertzel_power(x, 2e6, fs);
}

double trial_fft(bool fast) {
  static const dsp::Cvec x = noise_block(1024, 2);
  thread_local dsp::Cvec buf;
  buf = x;
  if (fast) {
    dsp::fft_inplace(buf);
  } else {
    refdsp::fft_inplace(buf);
  }
  return buf[1].real();
}

double trial_fir(bool fast) {
  static const dsp::Rvec taps = dsp::design_lowpass(16e6, 2e6, 63);
  static const dsp::Cvec x = noise_block(4096, 3);
  if (fast) {
    thread_local dsp::FirFilter f(taps);
    thread_local dsp::Cvec out;
    f.reset();  // fresh state every trial keeps results scheduling-independent
    out.resize(x.size());
    f.process_into(x, out, dsp::DspWorkspace::tls());
    return out[100].real();
  }
  return refdsp::fir_apply(taps, x)[100].real();
}

double trial_nco(bool fast) {
  constexpr std::size_t kSamples = 65536;
  if (fast) {
    thread_local dsp::Cvec buf(kSamples);
    dsp::Nco nco(16e6, 1.7e6);
    nco.generate_into(buf);
    return buf.back().real();
  }
  refdsp::RefNco nco(16e6, 1.7e6);
  return nco.generate(kSamples).back().real();
}

const phy::Bits& frame_bits(Rng& rng) {
  thread_local phy::Bits frame;
  frame.assign(kPrefix.begin(), kPrefix.end());
  for (std::size_t i = 0; i < kFrameBits; ++i) frame.push_back(rng.chance(0.5) ? 1 : 0);
  return frame;
}

double trial_otam(bool fast, Rng& rng) {
  const phy::PhyConfig cfg = pinned_config();
  const rf::SpdtSwitch spdt;
  const phy::Bits& bits = frame_bits(rng);
  if (fast) {
    phy::FramePipeline& pipe = phy::thread_pipeline(cfg);
    pipe.synthesize_otam(bits, kChannel, spdt);
    return std::abs(pipe.rx()[5]);
  }
  return std::abs(refdsp::otam_synthesize(bits, cfg, kChannel, spdt)[5]);
}

double trial_fig11(bool fast, Rng& rng) {
  const phy::PhyConfig cfg = pinned_config();
  const rf::SpdtSwitch spdt;
  const phy::Bits& bits = frame_bits(rng);
  std::size_t errors = 0;
  if (fast) {
    phy::FramePipeline& pipe = phy::thread_pipeline(cfg);
    pipe.synthesize_otam(bits, kChannel, spdt);
    pipe.add_noise_snr(kSnrDb, rng);
    const phy::JointDecision& d = pipe.demodulate_joint(kPrefix);
    for (std::size_t i = kPrefix.size(); i < bits.size(); ++i) errors += (d.bits[i] != bits[i]);
  } else {
    dsp::Cvec rx = refdsp::otam_synthesize(bits, cfg, kChannel, spdt);
    dsp::add_awgn_snr(rx, kSnrDb, rng);
    const phy::JointDecision d = refdsp::joint_demodulate(rx, cfg, kPrefix);
    for (std::size_t i = kPrefix.size(); i < bits.size(); ++i) errors += (d.bits[i] != bits[i]);
  }
  return static_cast<double>(errors) / static_cast<double>(kFrameBits);
}

const std::vector<std::string> kStages = {"goertzel", "fig11", "fft", "fir", "otam", "nco"};

sim::SweepResult<double> run_stage(const std::string& stage, bool fast,
                                   sim::SweepRunner& runner) {
  if (stage == "goertzel") return runner.run([&](std::size_t, Rng&) { return trial_goertzel(fast); });
  if (stage == "fft") return runner.run([&](std::size_t, Rng&) { return trial_fft(fast); });
  if (stage == "fir") return runner.run([&](std::size_t, Rng&) { return trial_fir(fast); });
  if (stage == "nco") return runner.run([&](std::size_t, Rng&) { return trial_nco(fast); });
  if (stage == "otam") return runner.run([&](std::size_t, Rng& rng) { return trial_otam(fast, rng); });
  return runner.run([&](std::size_t, Rng& rng) { return trial_fig11(fast, rng); });
}

}  // namespace

int main(int argc, char** argv) {
  std::string stage = "all";
  std::string kernels = "fast";
  const bench::Options opt = bench::parse_args(
      argc, argv, /*default_trials=*/600, /*default_seed=*/0x6d6d5821ULL, "trials per stage",
      {{"--stage", "all|goertzel|fig11|fft|fir|otam|nco (default all)", &stage},
       {"--kernels", "fast|ref kernel set (default fast)", &kernels}});
  if (kernels != "fast" && kernels != "ref") {
    std::fprintf(stderr, "micro_dsp: --kernels must be fast or ref, got '%s'\n", kernels.c_str());
    return 2;
  }
  const bool fast = kernels == "fast";
  sim::SweepRunner runner(opt.sweep);

  if (stage == "all") {
    bench::JsonReport report("micro_dsp", opt);
    std::printf("# micro_dsp — ref vs fast kernels, %zu trials/stage, %zu threads\n",
                opt.sweep.trials, runner.threads());
    std::printf("%-10s %14s %14s %9s\n", "stage", "ref trials/s", "fast trials/s", "speedup");
    for (const std::string& s : kStages) {
      const sim::SweepResult<double> ref = run_stage(s, /*fast=*/false, runner);
      const sim::SweepResult<double> fst = run_stage(s, /*fast=*/true, runner);
      const double speedup = ref.trials_per_s > 0.0 ? fst.trials_per_s / ref.trials_per_s : 0.0;
      std::printf("%-10s %14.1f %14.1f %8.2fx\n", s.c_str(), ref.trials_per_s, fst.trials_per_s,
                  speedup);
      report.add_scalar("speedup_" + s, speedup);
      if (s == "fig11") report.record(fst);
    }
    return report.write() ? 0 : 1;
  }

  bool known = false;
  for (const std::string& s : kStages) known = known || (s == stage);
  if (!known) {
    std::fprintf(stderr, "micro_dsp: unknown --stage '%s'\n", stage.c_str());
    return 2;
  }
  const sim::SweepResult<double> result = run_stage(stage, fast, runner);
  bench::report_timing(result);
  std::printf("[micro_dsp] stage=%s kernels=%s trials=%zu trials_per_s=%.1f\n", stage.c_str(),
              kernels.c_str(), result.trials.size(), result.trials_per_s);
  bench::JsonReport report("micro_dsp_" + stage, opt);
  report.record(result);
  report.add_metric("checksum", result.trials);
  return report.write() ? 0 : 1;
}
