// Micro-benchmarks of the geometry fast path (channel::RoomPlan) against
// the reference RayTracer, on the shared sweep harness.
//
// Two kernel sets are selectable with --kernels:
//   fast  the production path: compiled RoomPlan, tabulated AP images,
//         batched trace_batch_into, caller-owned PathList workspace
//   ref   RayTracer::trace — the frozen bit-exact reference (allocating
//         one vector per call, deriving every image inline)
//
// Every trial folds the traced paths into a checksum, so the work cannot
// be optimized away AND ref/fast runs are bitwise-comparable: the default
// `all` mode runs matched ref/fast pairs per stage, prints the speedup
// table, and FAILS (exit 1) if any stage's per-trial checksums differ —
// a perf report that doubles as an equivalence test. --stage picks one
// workload for a machine-readable run (the JSON bench name carries the
// stage, so tools/sweep_gate can compare a matched ref/fast pair); CI's
// bench-perf lane gates the refill stage at >= 3x (docs/GEOMETRY.md).
//
// Stages:
//   refill   the sim's cache-refill inner loop at its pinned config
//            (1 bounce, 60 dB): 10k nodes against one AP in a 12 m x 8 m
//            room with 3 human blockers, in 64-node blocks, one
//            blockers-on gains trace + one blockers-off corridor trace
//            per node — exactly NetworkSimulator::refill_block's shape
//   trace    single-pair trace_into, random endpoints, 1 bounce
//   bounce2  single-pair trace, 2 bounces (image-of-image heavy)
//   dense    48 blockers (grid broad phase on), 2 bounces
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "harness.hpp"
#include "mmx/channel/ray_tracer.hpp"
#include "mmx/channel/room_plan.hpp"
#include "mmx/common/rng.hpp"

using namespace mmx;

namespace {

constexpr double kRoomW = 12.0;
constexpr double kRoomH = 8.0;
constexpr Vec2 kAp{6.0, 4.0};
// The sim's pinned trace config (network_sim.cpp): 1 bounce, 60 dB.
constexpr double kMaxExcessDb = 60.0;
constexpr std::size_t kRefillNodes = 10000;
constexpr std::size_t kBlock = 64;  // NetworkSimulator's kRefillBlock

channel::Room make_room(int blockers, std::uint64_t seed) {
  channel::Room room(kRoomW, kRoomH);
  Rng rng(seed);
  for (int i = 0; i < blockers; ++i)
    room.add_blocker({{rng.uniform(0.5, kRoomW - 0.5), rng.uniform(0.5, kRoomH - 0.5)},
                      rng.uniform(0.15, 0.35), rng.uniform(10.0, 30.0)});
  return room;
}

double path_checksum(const channel::Path& p) {
  return p.length_m + p.excess_loss_db + static_cast<double>(p.blocker_crossings);
}

// One fixture per stage flavour, built once: the plan compiles per
// Room::epoch() and the AP image table per (endpoint, epoch) — exactly
// the amortization the production refill enjoys.
struct Fixture {
  channel::Room room;
  channel::RayTracer tracer;
  channel::RoomPlan plan;
  channel::ImageTable ap_images;

  Fixture(int blockers, std::uint64_t seed, int max_bounces)
      : room(make_room(blockers, seed)), tracer(room), plan(room) {
    plan.build_images(kAp, max_bounces, ap_images);
  }
};

Fixture& refill_fixture() {
  static Fixture f(/*blockers=*/3, /*seed=*/0x5eedULL, /*max_bounces=*/1);
  return f;
}
Fixture& sparse_fixture() {
  static Fixture f(/*blockers=*/3, /*seed=*/0x5eedULL, /*max_bounces=*/2);
  return f;
}
Fixture& dense_fixture() {
  static Fixture f(/*blockers=*/48, /*seed=*/0xd05eULL, /*max_bounces=*/2);
  return f;
}

const std::vector<Vec2>& refill_nodes() {
  static const std::vector<Vec2> nodes = [] {
    std::vector<Vec2> out;
    out.reserve(kRefillNodes);
    Rng rng(0x10adULL);
    for (std::size_t i = 0; i < kRefillNodes; ++i)
      out.push_back({rng.uniform(0.25, kRoomW - 0.25), rng.uniform(0.25, kRoomH - 0.25)});
    return out;
  }();
  return nodes;
}

// The sim's refill inner loop: per 64-node block, one batched gains trace
// (blockers applied) and one batched corridor trace (blockers off).
// Checksums accumulate per-stream in node order, so ref and fast sum the
// same doubles in the same sequence — bitwise-equal results.
double trial_refill(bool fast) {
  Fixture& f = refill_fixture();
  const std::vector<Vec2>& nodes = refill_nodes();
  double acc_gains = 0.0;
  double acc_corr = 0.0;
  if (fast) {
    thread_local channel::PathList ws;
    thread_local std::vector<std::uint32_t> offs;
    for (std::size_t lo = 0; lo < nodes.size(); lo += kBlock) {
      const std::size_t n = std::min(kBlock, nodes.size() - lo);
      const std::span<const Vec2> block(nodes.data() + lo, n);
      offs.resize(2 * (n + 1));
      const std::span<std::uint32_t> o1(offs.data(), n + 1);
      const std::span<std::uint32_t> o2(offs.data() + n + 1, n + 1);
      ws.clear();
      // The fused refill kernel: gains + corridors from one pass.
      f.plan.trace_batch_dual_into(kAp, block, f.ap_images, ws, o1, o2, kMaxExcessDb, 1);
      for (std::size_t i = 0; i < n; ++i) {
        for (const channel::Path& p : ws.slice(o1[i], o1[i + 1])) acc_gains += path_checksum(p);
        for (const channel::Path& p : ws.slice(o2[i], o2[i + 1])) acc_corr += path_checksum(p);
      }
    }
  } else {
    for (const Vec2 node : nodes) {
      for (const channel::Path& p : f.tracer.trace(node, kAp, kMaxExcessDb, 1, true))
        acc_gains += path_checksum(p);
      for (const channel::Path& p : f.tracer.trace(node, kAp, kMaxExcessDb, 1, false))
        acc_corr += path_checksum(p);
    }
  }
  return acc_gains + acc_corr;
}

// Single-pair tracing with per-trial random endpoints. Endpoints are
// drawn before the kernel branch, so ref and fast consume identical rng
// streams and the checksums stay comparable.
double trial_single(bool fast, Rng& rng, Fixture& f, int max_bounces) {
  double acc = 0.0;
  for (int i = 0; i < 64; ++i) {
    const Vec2 tx{rng.uniform(0.25, kRoomW - 0.25), rng.uniform(0.25, kRoomH - 0.25)};
    const Vec2 rx{rng.uniform(0.25, kRoomW - 0.25), rng.uniform(0.25, kRoomH - 0.25)};
    if (tx == rx) continue;
    if (fast) {
      thread_local channel::PathList ws;
      ws.clear();
      for (const channel::Path& p :
           f.plan.trace_into(tx, rx, ws, kMaxExcessDb, max_bounces, true))
        acc += path_checksum(p);
    } else {
      for (const channel::Path& p : f.tracer.trace(tx, rx, kMaxExcessDb, max_bounces, true))
        acc += path_checksum(p);
    }
  }
  return acc;
}

const std::vector<std::string> kStages = {"refill", "trace", "bounce2", "dense"};

sim::SweepResult<double> run_stage(const std::string& stage, bool fast,
                                   sim::SweepRunner& runner) {
  if (stage == "refill") return runner.run([&](std::size_t, Rng&) { return trial_refill(fast); });
  if (stage == "trace")
    return runner.run(
        [&](std::size_t, Rng& rng) { return trial_single(fast, rng, sparse_fixture(), 1); });
  if (stage == "bounce2")
    return runner.run(
        [&](std::size_t, Rng& rng) { return trial_single(fast, rng, sparse_fixture(), 2); });
  return runner.run(
      [&](std::size_t, Rng& rng) { return trial_single(fast, rng, dense_fixture(), 2); });
}

bool checksums_match(const sim::SweepResult<double>& a, const sim::SweepResult<double>& b) {
  if (a.trials.size() != b.trials.size()) return false;
  for (std::size_t i = 0; i < a.trials.size(); ++i)
    if (a.trials[i] != b.trials[i]) return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string stage = "all";
  std::string kernels = "fast";
  const bench::Options opt = bench::parse_args(
      argc, argv, /*default_trials=*/20, /*default_seed=*/0x6d6d5821ULL, "trials per stage",
      {{"--stage", "all|refill|trace|bounce2|dense (default all)", &stage},
       {"--kernels", "fast|ref kernel set (default fast)", &kernels}});
  if (kernels != "fast" && kernels != "ref") {
    std::fprintf(stderr, "micro_trace: --kernels must be fast or ref, got '%s'\n",
                 kernels.c_str());
    return 2;
  }
  const bool fast = kernels == "fast";
  sim::SweepRunner runner(opt.sweep);

  if (stage == "all") {
    bench::JsonReport report("micro_trace", opt);
    std::printf("# micro_trace — RayTracer (ref) vs RoomPlan (fast), %zu trials/stage, %zu threads\n",
                opt.sweep.trials, runner.threads());
    std::printf("%-10s %14s %14s %9s %9s\n", "stage", "ref trials/s", "fast trials/s", "speedup",
                "bitwise");
    for (const std::string& s : kStages) {
      const sim::SweepResult<double> ref = run_stage(s, /*fast=*/false, runner);
      const sim::SweepResult<double> fst = run_stage(s, /*fast=*/true, runner);
      const bool same = checksums_match(ref, fst);
      const double speedup = ref.trials_per_s > 0.0 ? fst.trials_per_s / ref.trials_per_s : 0.0;
      std::printf("%-10s %14.1f %14.1f %8.2fx %9s\n", s.c_str(), ref.trials_per_s,
                  fst.trials_per_s, speedup, same ? "ok" : "MISMATCH");
      if (!same) {
        std::fprintf(stderr, "micro_trace: stage '%s' checksums diverge from the reference\n",
                     s.c_str());
        return 1;
      }
      report.add_scalar("speedup_" + s, speedup);
      if (s == "refill") report.record(fst);
    }
    return report.write() ? 0 : 1;
  }

  bool known = false;
  for (const std::string& s : kStages) known = known || (s == stage);
  if (!known) {
    std::fprintf(stderr, "micro_trace: unknown --stage '%s'\n", stage.c_str());
    return 2;
  }
  const sim::SweepResult<double> result = run_stage(stage, fast, runner);
  bench::report_timing(result);
  std::printf("[micro_trace] stage=%s kernels=%s trials=%zu trials_per_s=%.1f\n", stage.c_str(),
              kernels.c_str(), result.trials.size(), result.trials_per_s);
  bench::JsonReport report("micro_trace_" + stage, opt);
  report.record(result);
  report.add_metric("checksum", result.trials);
  return report.write() ? 0 : 1;
}
