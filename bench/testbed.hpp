// Shared experiment testbed for the figure-reproduction benches —
// thin aliases over the library's canonical presets
// (mmx/channel/presets.hpp) so benches, tests and examples measure the
// same world.
#pragma once

#include "mmx/channel/presets.hpp"

namespace mmx::bench {

inline channel::Room furnished_lab() { return channel::furnished_lab(); }
inline channel::Pose lab_ap_pose() { return channel::furnished_lab_ap(); }
inline std::size_t park_person(channel::Room& room, Vec2 node, Vec2 ap) {
  return channel::park_person(room, node, ap);
}

}  // namespace mmx::bench
