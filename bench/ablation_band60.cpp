// Ablation: 24 GHz vs 60 GHz operation (paper §7a: "the available
// unlicensed spectrum at 24 GHz and 60 GHz are 250 MHz and 7 GHz").
//
// 60 GHz buys 28x the spectrum (hundreds of FDM nodes) at the price of
// ~8 dB extra free-space loss, the oxygen absorption peak, and smaller
// effective apertures. The mmX architecture is frequency-agnostic — same
// beam pair, same OTAM — so the library can evaluate both bands.
#include <cstdio>

#include "mmx/channel/beam_channel.hpp"
#include "mmx/channel/propagation.hpp"
#include "mmx/common/units.hpp"
#include "mmx/mac/allocator.hpp"
#include "mmx/sim/link_budget.hpp"

using namespace mmx;

namespace {

double otam_snr_at(double distance_m, double freq_hz) {
  channel::Room hall(22.0, 8.0);
  channel::RayTracer tracer(hall);
  const channel::Pose ap{{21.0, 4.0}, kPi};
  const channel::Pose node{{21.0 - distance_m, 4.0}, 0.0};
  antenna::MmxBeamPair beams(antenna::BeamPairSpec{.freq_hz = freq_hz});
  antenna::Dipole ap_antenna;
  sim::LinkBudget budget;
  rf::SpdtSwitch spdt;
  const auto g = channel::compute_beam_gains(tracer, node, beams, ap, ap_antenna, freq_hz);
  return budget.evaluate_otam(g, spdt).snr_db;
}

int fdm_capacity(double low_hz, double high_hz, double per_node_hz) {
  mac::FdmAllocator alloc(low_hz, high_hz, 1e6);
  int n = 0;
  while (alloc.allocate(static_cast<std::uint16_t>(n), per_node_hz)) ++n;
  return n;
}

}  // namespace

int main() {
  std::puts("=== Ablation: 24 GHz ISM vs 60 GHz unlicensed band ===\n");

  const double kBand60Low = 57.0e9;
  const double kBand60High = 64.0e9;

  std::puts("  property                      24 GHz          60 GHz");
  std::printf("  unlicensed bandwidth       %6.0f MHz      %6.0f MHz\n", kIsmBandwidthHz / 1e6,
              (kBand60High - kBand60Low) / 1e6);
  std::printf("  FDM nodes at 25 MHz each   %6d          %6d\n",
              fdm_capacity(kIsmLowHz, kIsmHighHz, 25e6),
              fdm_capacity(kBand60Low, kBand60High, 25e6));
  std::printf("  FSPL at 10 m               %6.1f dB       %6.1f dB\n",
              friis_path_loss_db(10.0, 24.125e9), friis_path_loss_db(10.0, 60.5e9));
  std::printf("  oxygen absorption, 100 m   %6.2f dB       %6.2f dB\n",
              channel::atmospheric_loss_db(100.0, 24.125e9),
              channel::atmospheric_loss_db(100.0, 60.5e9));

  std::puts("\n  OTAM SNR vs distance (same hall, same TX power):");
  std::puts("  distance [m]    SNR @24 GHz    SNR @60 GHz");
  for (double d : {2.0, 5.0, 10.0, 15.0, 18.0}) {
    std::printf("  %11.0f    %8.1f dB    %8.1f dB\n", d, otam_snr_at(d, 24.125e9),
                otam_snr_at(d, 60.5e9));
  }

  std::puts("\nshape: 60 GHz trades ~8 dB of link budget for 28x the spectrum —");
  std::puts("the right band depends on whether range or node density dominates.");
  return 0;
}
