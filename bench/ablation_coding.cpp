// Ablation: error-correction coding on top of OTAM (§9.3's closing
// remark, quantified).
//
// Analytic waterfall curves for uncoded / Hamming(7,4) / K=3
// convolutional decoding, anchored by a sample-level spot check through
// the full modulator/demodulator.
//
// Parallel sweep: the (SNR, coding profile) spot-check combinations fan
// across the pool, each drawing frames from its own counter-derived
// stream (`--trials N` sets the frames per combination).
#include <cstdio>
#include <vector>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/phy/ber.hpp"
#include "mmx/phy/coding.hpp"
#include "mmx/phy/pipeline.hpp"
#include "mmx/phy/preamble.hpp"
#include "mmx/sim/sweep.hpp"

#include "harness.hpp"

using namespace mmx;
using namespace mmx::phy;

namespace {

/// Sample-level residual BER of a coded body at a given capture SNR.
double measured_coded_ber(CodingProfile profile, double snr_db, std::size_t frames, Rng& rng) {
  PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 16;
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;
  rf::SpdtSwitch sw;
  const OtamChannel ch{{0.25, 0.0}, {1.0, 0.0}};
  const Bits& preamble = default_preamble();

  std::size_t errors = 0;
  std::size_t counted = 0;
  FramePipeline& pipe = thread_pipeline(cfg);  // warm buffers across frames
  for (std::size_t frame = 0; frame < frames; ++frame) {
    Bits body(1200);
    for (int& b : body) b = rng.uniform_int(0, 1);
    Bits bits = preamble;
    const Bits coded = encode_body(body, profile);
    bits.insert(bits.end(), coded.begin(), coded.end());
    pipe.synthesize_otam(bits, ch, sw);
    pipe.add_noise_snr(snr_db, rng);
    const JointDecision& d = pipe.demodulate_joint(preamble);
    Bits rx_body(d.bits.begin() + static_cast<long>(preamble.size()), d.bits.end());
    if (profile != CodingProfile::kNone) {
      rx_body.resize(coded.size());
      try {
        rx_body = decode_body(rx_body, profile);
      } catch (const std::invalid_argument&) {
        errors += body.size() / 2;  // undecodable frame ~ coin flips
        counted += body.size();
        continue;
      }
    } else {
      rx_body.resize(body.size());
    }
    for (std::size_t i = 0; i < body.size() && i < rx_body.size(); ++i) {
      errors += (rx_body[i] != body[i]);
    }
    counted += body.size();
  }
  return static_cast<double>(errors) / static_cast<double>(counted);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt =
      bench::parse_args(argc, argv, 10, 77, "frames per (SNR, profile) spot check");
  std::puts("=== Ablation: FEC on OTAM (analytic waterfalls + sample-level check) ===\n");
  std::puts("  raw BER      Hamming(7,4)   conv K=3 (hard)");
  for (double p : {1e-1, 3e-2, 1e-2, 3e-3, 1e-3, 1e-4}) {
    std::printf("  %8.0e   %12.2e   %14.2e\n", p, ber_hamming74(p), ber_conv_k3(p));
  }

  std::puts("\n--- sample-level spot check at marginal SNR (full modem in the loop) ---");
  std::puts("  capture SNR   uncoded BER   Hamming BER   conv BER");
  const std::vector<double> snrs_db{2.0, 4.0, 6.0};
  const std::vector<CodingProfile> profiles{CodingProfile::kNone, CodingProfile::kHamming,
                                            CodingProfile::kConvolutional};
  sim::SweepRunner runner(opt.sweep);
  const auto sweep =
      runner.map(snrs_db.size() * profiles.size(), [&](std::size_t combo, Rng& rng) {
        const double snr = snrs_db[combo / profiles.size()];
        const CodingProfile profile = profiles[combo % profiles.size()];
        return measured_coded_ber(profile, snr, opt.sweep.trials, rng);
      });
  std::vector<double> spot_ber;
  for (std::size_t s = 0; s < snrs_db.size(); ++s) {
    const double none = sweep.trials[s * profiles.size() + 0];
    const double ham = sweep.trials[s * profiles.size() + 1];
    const double conv = sweep.trials[s * profiles.size() + 2];
    std::printf("  %8.1f dB   %11.4f   %11.4f   %8.4f\n", snrs_db[s], none, ham, conv);
    spot_ber.push_back(none);
    spot_ber.push_back(ham);
    spot_ber.push_back(conv);
  }
  std::puts("\nreading: a couple of dB of coding gain turns the paper's residual");
  std::puts("1e-3-class physical BER into link-layer-clean delivery (§9.3).");

  bench::report_timing(sweep);
  bench::JsonReport report("ablation_coding", opt);
  report.record(sweep);
  report.add_metric("spot_check_ber", spot_ber);
  return report.write() ? 0 : 1;
}
