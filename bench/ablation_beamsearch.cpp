// Ablation: OTAM vs conventional exhaustive beam search (§6 motivation).
//
// A phased-array node wins on aligned SNR, but must re-search on every
// orientation/blockage change — paying latency and energy mmX never
// spends. This bench quantifies that trade across a rotation sweep.
#include <cstdio>

#include "mmx/baseline/beam_search.hpp"
#include "mmx/baseline/fixed_beam.hpp"
#include "mmx/common/units.hpp"

using namespace mmx;

int main() {
  channel::Room room(6.0, 4.0);
  channel::RayTracer tracer(room);
  const channel::Pose ap{{5.0, 2.0}, kPi};
  antenna::MmxBeamPair beams;
  antenna::Dipole ap_antenna;
  sim::LinkBudget budget;
  rf::SpdtSwitch spdt;
  baseline::BeamSearchNode bs;

  std::puts("=== Ablation: OTAM vs exhaustive beam search under rotation ===");
  std::puts("the phased array was aligned once at 0 deg, then the node rotates;");
  std::puts("'stale' = keep yesterday's beam, 're-search' = pay the search again\n");

  const channel::Pose start{{1.0, 2.0}, 0.0};
  const auto aligned = bs.exhaustive_search(tracer, start, ap, ap_antenna, budget);

  std::puts("  rot [deg]   OTAM SNR   stale-beam SNR   re-searched SNR");
  for (double deg = 0.0; deg <= 60.01; deg += 10.0) {
    channel::Pose rotated = start;
    rotated.orientation_rad = deg_to_rad(deg);
    const auto modes = baseline::compare_modes(tracer, rotated, beams, ap, ap_antenna,
                                               24.125e9, budget, spdt);
    const auto stale_h = bs.beam_gain(aligned.best_beam, tracer, rotated, ap, ap_antenna);
    const auto fresh = bs.exhaustive_search(tracer, rotated, ap, ap_antenna, budget);
    std::printf("  %9.0f   %8.1f   %14.1f   %15.1f\n", deg, modes.with_otam.snr_db,
                budget.snr_db(stale_h), fresh.best_snr_db);
  }

  std::puts("\n--- per-realignment costs (beam search only; OTAM pays zero) ---");
  std::printf("probes per search:      %zu\n", aligned.probes);
  std::printf("search latency:         %.1f us\n", aligned.search_time_s * 1e6);
  std::printf("search energy:          %.1f uJ\n", aligned.search_energy_j * 1e6);
  std::printf("phased-array power:     %.1f W (vs the whole mmX node at 1.1 W)\n",
              bs.spec().phased_array_power_w);
  // A node rotating once per second re-searches continuously:
  const double duty_energy = aligned.search_energy_j;  // per event
  std::printf("at 1 realignment/s:     %.1f uJ/s extra + %0.1f W array overhead\n",
              duty_energy * 1e6, bs.spec().phased_array_power_w);
  return 0;
}
