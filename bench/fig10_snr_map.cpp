// Figure 10: SNR heat map over the lab, without vs with OTAM.
//
// Paper setup (§9.2): a ~3 x 6 m measurement area with the AP at the
// middle of the short wall; node at random locations with orientation in
// [-60, +60] degrees; one person parked on the LoS the whole time; the
// lab has "standard furniture such as desks, chairs, computers and
// closets" — i.e. strong reflectors everywhere. Without OTAM many spots
// fall below 5 dB; with OTAM "SNRs of more than 11 dB in almost all
// locations".
//
// Parallel sweep: grid cells fan across the pool; orientations are drawn
// in one serial pass in the original row-major order, so the default
// `--trials 1` (orientation samples per cell) reproduces the historical
// figure bit-for-bit at any thread count.
#include <cstdio>
#include <vector>

#include "mmx/baseline/fixed_beam.hpp"
#include "mmx/channel/blockage.hpp"
#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/sim/stats.hpp"
#include "mmx/sim/sweep.hpp"

#include "harness.hpp"
#include "testbed.hpp"

using namespace mmx;

int main(int argc, char** argv) {
  const bench::Options opt =
      bench::parse_args(argc, argv, 1, 42, "random orientation samples per grid cell");
  const channel::Pose ap = bench::lab_ap_pose();

  const antenna::MmxBeamPair beams;
  const antenna::Dipole ap_antenna;
  const sim::LinkBudget budget;
  const rf::SpdtSwitch spdt;

  const std::size_t nx = 7;   // x: 0.5..3.5 m (0.5 m grid)
  const std::size_t ny = 10;  // y: 0.25..4.75 m
  const std::size_t samples = opt.sweep.trials;
  sim::Grid with_otam(nx, ny);
  sim::Grid without_otam(nx, ny);

  // One serial pass in row-major order — the original loop's draw order.
  Rng rng(opt.sweep.seed);
  std::vector<double> orientations(nx * ny * samples);
  for (std::size_t cell = 0; cell < nx * ny; ++cell) {
    const std::size_t ix = cell % nx;
    const std::size_t iy = cell / nx;
    const Vec2 pos{0.5 + 0.5 * static_cast<double>(ix), 0.25 + 0.5 * static_cast<double>(iy)};
    const double toward_ap = (ap.position - pos).angle();
    for (std::size_t j = 0; j < samples; ++j) {
      // Node roughly faces the AP, +/-60 degrees as in the paper.
      orientations[cell * samples + j] = toward_ap + deg_to_rad(rng.uniform(-60.0, 60.0));
    }
  }

  struct CellSnr {
    double with_otam;
    double without_otam;
  };
  sim::SweepRunner runner(opt.sweep);
  const auto sweep = runner.map(nx * ny, [&](std::size_t cell, Rng&) {
    const std::size_t ix = cell % nx;
    const std::size_t iy = cell / nx;
    const Vec2 pos{0.5 + 0.5 * static_cast<double>(ix), 0.25 + 0.5 * static_cast<double>(iy)};
    // Fresh room per location: one person parked on this cell's LoS.
    channel::Room room = bench::furnished_lab();
    bench::park_person(room, pos, ap.position);
    const channel::RayTracer tracer(room);
    CellSnr acc{0.0, 0.0};
    for (std::size_t j = 0; j < samples; ++j) {
      const channel::Pose node{pos, orientations[cell * samples + j]};
      const auto modes = baseline::compare_modes_avg(tracer, node, beams, ap, ap_antenna,
                                                     24.125e9, budget, spdt);
      acc.with_otam += modes.with_otam.snr_db;
      acc.without_otam += modes.without_otam.snr_db;
    }
    const double n = static_cast<double>(samples);
    return CellSnr{acc.with_otam / n, acc.without_otam / n};
  });
  for (std::size_t cell = 0; cell < nx * ny; ++cell) {
    with_otam.at(cell % nx, cell / nx) = sweep.trials[cell].with_otam;
    without_otam.at(cell % nx, cell / nx) = sweep.trials[cell].without_otam;
  }

  const auto print_grid = [&](const char* label, const sim::Grid& g) {
    std::printf("--- %s (SNR [dB] per location; AP at x=2.0, y=5.9) ---\n", label);
    std::printf("   y\\x ");
    for (std::size_t ix = 0; ix < nx; ++ix) std::printf("%6.2f", 0.5 + 0.5 * ix);
    std::printf("\n");
    for (std::size_t iy = 0; iy < ny; ++iy) {
      std::printf("  %4.2f ", 0.25 + 0.5 * iy);
      for (std::size_t ix = 0; ix < nx; ++ix) std::printf("%6.1f", g.at(ix, iy));
      std::printf("\n");
    }
  };

  std::puts("=== Figure 10: room SNR map, without vs with OTAM ===");
  std::puts("paper: w/o OTAM many locations < 5 dB; w/ OTAM > 11 dB almost everywhere\n");
  print_grid("(a) without OTAM: fixed Beam 1, ASK at the node", without_otam);
  std::puts("");
  print_grid("(b) with OTAM: modulation over the air", with_otam);

  std::puts("\n--- summary (paper -> measured) ---");
  std::printf("w/o OTAM, locations below 5 dB:  'many'       -> %4.1f%%\n",
              100.0 * (1.0 - without_otam.fraction_at_least(5.0)));
  std::printf("w/  OTAM, locations below 5 dB:  'none'       -> %4.1f%%\n",
              100.0 * (1.0 - with_otam.fraction_at_least(5.0)));
  std::printf("w/  OTAM, locations >= 11 dB:    'almost all' -> %4.1f%%\n",
              100.0 * with_otam.fraction_at_least(11.0));
  std::printf("w/  OTAM, worst location:                     -> %5.1f dB\n",
              with_otam.min_value());
  std::printf("w/  OTAM, best location:         <= ~30 dB    -> %5.1f dB\n",
              with_otam.max_value());

  bench::report_timing(sweep);
  bench::JsonReport report("fig10_snr_map", opt);
  report.record(sweep);
  report.add_metric("snr_with_otam_db", with_otam.values());
  report.add_metric("snr_without_otam_db", without_otam.values());
  report.add_scalar("with_otam_frac_ge_11db", with_otam.fraction_at_least(11.0));
  report.add_scalar("without_otam_frac_lt_5db", 1.0 - without_otam.fraction_at_least(5.0));
  return report.write() ? 0 : 1;
}
