// Figure 10: SNR heat map over the lab, without vs with OTAM.
//
// Paper setup (§9.2): a ~3 x 6 m measurement area with the AP at the
// middle of the short wall; node at random locations with orientation in
// [-60, +60] degrees; one person parked on the LoS the whole time; the
// lab has "standard furniture such as desks, chairs, computers and
// closets" — i.e. strong reflectors everywhere. Without OTAM many spots
// fall below 5 dB; with OTAM "SNRs of more than 11 dB in almost all
// locations".
#include <cstdio>

#include "mmx/baseline/fixed_beam.hpp"
#include "mmx/channel/blockage.hpp"
#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/sim/stats.hpp"

#include "testbed.hpp"

using namespace mmx;

int main() {
  Rng rng(42);
  const channel::Pose ap = bench::lab_ap_pose();

  antenna::MmxBeamPair beams;
  antenna::Dipole ap_antenna;
  sim::LinkBudget budget;
  rf::SpdtSwitch spdt;

  const std::size_t nx = 7;   // x: 0.5..3.5 m (0.5 m grid)
  const std::size_t ny = 10;  // y: 0.25..4.75 m
  sim::Grid with_otam(nx, ny);
  sim::Grid without_otam(nx, ny);

  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const Vec2 pos{0.5 + 0.5 * static_cast<double>(ix),
                     0.25 + 0.5 * static_cast<double>(iy)};
      // Fresh room per location: one person parked on this node's LoS.
      channel::Room room = bench::furnished_lab();
      bench::park_person(room, pos, ap.position);
      channel::RayTracer tracer(room);
      // Node roughly faces the AP, +/-60 degrees as in the paper.
      const double toward_ap = (ap.position - pos).angle();
      const double orient = toward_ap + deg_to_rad(rng.uniform(-60.0, 60.0));
      const channel::Pose node{pos, orient};
      const auto modes = baseline::compare_modes_avg(tracer, node, beams, ap, ap_antenna,
                                                 24.125e9, budget, spdt);
      with_otam.at(ix, iy) = modes.with_otam.snr_db;
      without_otam.at(ix, iy) = modes.without_otam.snr_db;
    }
  }

  const auto print_grid = [&](const char* label, const sim::Grid& g) {
    std::printf("--- %s (SNR [dB] per location; AP at x=2.0, y=5.9) ---\n", label);
    std::printf("   y\\x ");
    for (std::size_t ix = 0; ix < nx; ++ix) std::printf("%6.2f", 0.5 + 0.5 * ix);
    std::printf("\n");
    for (std::size_t iy = 0; iy < ny; ++iy) {
      std::printf("  %4.2f ", 0.25 + 0.5 * iy);
      for (std::size_t ix = 0; ix < nx; ++ix) std::printf("%6.1f", g.at(ix, iy));
      std::printf("\n");
    }
  };

  std::puts("=== Figure 10: room SNR map, without vs with OTAM ===");
  std::puts("paper: w/o OTAM many locations < 5 dB; w/ OTAM > 11 dB almost everywhere\n");
  print_grid("(a) without OTAM: fixed Beam 1, ASK at the node", without_otam);
  std::puts("");
  print_grid("(b) with OTAM: modulation over the air", with_otam);

  std::puts("\n--- summary (paper -> measured) ---");
  std::printf("w/o OTAM, locations below 5 dB:  'many'       -> %4.1f%%\n",
              100.0 * (1.0 - without_otam.fraction_at_least(5.0)));
  std::printf("w/  OTAM, locations below 5 dB:  'none'       -> %4.1f%%\n",
              100.0 * (1.0 - with_otam.fraction_at_least(5.0)));
  std::printf("w/  OTAM, locations >= 11 dB:    'almost all' -> %4.1f%%\n",
              100.0 * with_otam.fraction_at_least(11.0));
  std::printf("w/  OTAM, worst location:                     -> %5.1f dB\n",
              with_otam.min_value());
  std::printf("w/  OTAM, best location:         <= ~30 dB    -> %5.1f dB\n",
              with_otam.max_value());
  return 0;
}
