// Figure 12: SNR versus node-AP distance, two orientations.
//
// Paper: in a long corridor-like space out to 20 m. Scenario 1: node
// facing the AP (LoS on Beam 1's boresight). Scenario 2: node not facing
// the AP. Even at 18 m: >= 15 dB facing, and still ~9 dB not facing.
#include <cstdio>

#include "mmx/channel/beam_channel.hpp"
#include "mmx/common/units.hpp"
#include "mmx/sim/link_budget.hpp"

using namespace mmx;

int main() {
  // A 22 x 8 m hall; AP at one end.
  channel::Room hall(22.0, 8.0);
  channel::RayTracer tracer(hall);
  const channel::Pose ap{{21.0, 4.0}, kPi};
  antenna::MmxBeamPair beams;
  antenna::Dipole ap_antenna;
  sim::LinkBudget budget;
  rf::SpdtSwitch spdt;

  std::puts("=== Figure 12: SNR vs distance (scenario 1: facing; 2: not facing) ===");
  std::puts("paper: at 18 m scenario 1 >= 15 dB, scenario 2 still ~9 dB\n");
  std::puts("  distance [m]   SNR facing [dB]   SNR not facing [dB]");

  double snr18_facing = 0.0;
  double snr18_away = 0.0;
  for (double d = 1.0; d <= 20.01; d += 1.0) {
    const channel::Pose facing{{21.0 - d, 4.0}, 0.0};
    // "Not facing": rotated 45 degrees, so only one arm of Beam 0 points
    // roughly at the AP (paper's description of scenario 2).
    const channel::Pose away{{21.0 - d, 4.0}, deg_to_rad(45.0)};
    const auto g_face =
        channel::compute_beam_gains(tracer, facing, beams, ap, ap_antenna, 24.125e9);
    const auto g_away =
        channel::compute_beam_gains(tracer, away, beams, ap, ap_antenna, 24.125e9);
    const double s_face = budget.evaluate_otam(g_face, spdt).snr_db;
    const double s_away = budget.evaluate_otam(g_away, spdt).snr_db;
    std::printf("  %12.0f   %15.1f   %19.1f\n", d, s_face, s_away);
    if (d == 18.0) {
      snr18_facing = s_face;
      snr18_away = s_away;
    }
  }

  std::puts("\n--- summary (paper -> measured) ---");
  std::printf("scenario 1 at 18 m: >= 15 dB -> %.1f dB\n", snr18_facing);
  std::printf("scenario 2 at 18 m:  ~ 9 dB  -> %.1f dB\n", snr18_away);
  return 0;
}
