// Figure 12: SNR versus node-AP distance, two orientations.
//
// Paper: in a long corridor-like space out to 20 m. Scenario 1: node
// facing the AP (LoS on Beam 1's boresight). Scenario 2: node not facing
// the AP. Even at 18 m: >= 15 dB facing, and still ~9 dB not facing.
//
// Parallel sweep: the distance axis fans across the pool. `--trials N`
// sets the number of sample points over [1, 20] m; the default 20 keeps
// the historical 1 m grid (and byte-identical output).
#include <cmath>
#include <cstdio>
#include <vector>

#include "mmx/channel/beam_channel.hpp"
#include "mmx/common/units.hpp"
#include "mmx/sim/link_budget.hpp"
#include "mmx/sim/sweep.hpp"

#include "harness.hpp"

using namespace mmx;

int main(int argc, char** argv) {
  const bench::Options opt =
      bench::parse_args(argc, argv, 20, 12, "distance sample points over [1, 20] m");
  // A 22 x 8 m hall; AP at one end.
  const channel::Room hall(22.0, 8.0);
  const channel::RayTracer tracer(hall);
  const channel::Pose ap{{21.0, 4.0}, kPi};
  const antenna::MmxBeamPair beams;
  const antenna::Dipole ap_antenna;
  const sim::LinkBudget budget;
  const rf::SpdtSwitch spdt;

  const std::size_t points = opt.sweep.trials;
  const double step_m = points > 1 ? 19.0 / static_cast<double>(points - 1) : 0.0;
  const auto distance_m = [&](std::size_t i) { return 1.0 + step_m * static_cast<double>(i); };

  struct RangeSnr {
    double facing_db;
    double away_db;
  };
  sim::SweepRunner runner(opt.sweep);
  const auto sweep = runner.map(points, [&](std::size_t i, Rng&) {
    const double d = distance_m(i);
    const channel::Pose facing{{21.0 - d, 4.0}, 0.0};
    // "Not facing": rotated 45 degrees, so only one arm of Beam 0 points
    // roughly at the AP (paper's description of scenario 2).
    const channel::Pose away{{21.0 - d, 4.0}, deg_to_rad(45.0)};
    const auto g_face =
        channel::compute_beam_gains(tracer, facing, beams, ap, ap_antenna, 24.125e9);
    const auto g_away =
        channel::compute_beam_gains(tracer, away, beams, ap, ap_antenna, 24.125e9);
    return RangeSnr{budget.evaluate_otam(g_face, spdt).snr_db,
                    budget.evaluate_otam(g_away, spdt).snr_db};
  });

  std::puts("=== Figure 12: SNR vs distance (scenario 1: facing; 2: not facing) ===");
  std::puts("paper: at 18 m scenario 1 >= 15 dB, scenario 2 still ~9 dB\n");
  std::puts("  distance [m]   SNR facing [dB]   SNR not facing [dB]");

  std::size_t idx18 = 0;
  std::vector<double> facing_db(points);
  std::vector<double> away_db(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double d = distance_m(i);
    facing_db[i] = sweep.trials[i].facing_db;
    away_db[i] = sweep.trials[i].away_db;
    std::printf("  %12.0f   %15.1f   %19.1f\n", d, facing_db[i], away_db[i]);
    if (std::fabs(d - 18.0) < std::fabs(distance_m(idx18) - 18.0)) idx18 = i;
  }

  std::puts("\n--- summary (paper -> measured) ---");
  std::printf("scenario 1 at 18 m: >= 15 dB -> %.1f dB\n", facing_db[idx18]);
  std::printf("scenario 2 at 18 m:  ~ 9 dB  -> %.1f dB\n", away_db[idx18]);

  bench::report_timing(sweep);
  bench::JsonReport report("fig12_range", opt);
  report.record(sweep);
  report.add_metric("snr_facing_db", facing_db);
  report.add_metric("snr_not_facing_db", away_db);
  report.add_scalar("snr_facing_at_18m_db", facing_db[idx18]);
  report.add_scalar("snr_not_facing_at_18m_db", away_db[idx18]);
  return report.write() ? 0 : 1;
}
