// Figure 9: example received waveforms at the AP.
//
// (a) the usual case: the two beams' path losses differ -> the envelope
//     carries the bits (decode via ASK);
// (b) the rare equal-loss case: the envelope is flat but the per-bit
//     carrier frequency differs -> decode via FSK.
#include <cstdio>

#include "mmx/common/rng.hpp"
#include "mmx/common/units.hpp"
#include "mmx/dsp/envelope.hpp"
#include "mmx/phy/pipeline.hpp"

using namespace mmx;
using namespace mmx::phy;

namespace {

void run_case(const char* label, const OtamChannel& ch, Rng& rng) {
  PhyConfig cfg;
  cfg.symbol_rate_hz = 1e6;
  cfg.samples_per_symbol = 50;  // 500 samples over 10 bits, like the figure
  cfg.fsk_freq0_hz = -2e6;
  cfg.fsk_freq1_hz = 2e6;
  rf::SpdtSwitch sw;

  const Bits prefix{1, 0, 1, 0};
  Bits bits = prefix;
  for (int b : {1, 1, 0, 1, 0, 0}) bits.push_back(b);

  FramePipeline& pipe = thread_pipeline(cfg);
  pipe.synthesize_otam(bits, ch, sw);
  pipe.add_noise_snr(22.0, rng);

  std::printf("--- %s ---\n", label);
  const auto env = dsp::symbol_envelopes(pipe.rx(), cfg.samples_per_symbol, cfg.guard_frac);
  std::printf("  bit:       ");
  for (int b : bits) std::printf("   %d  ", b);
  std::printf("\n  envelope:  ");
  for (double e : env) std::printf("%5.2f ", e / env[0]);
  std::printf(" (relative to first symbol)\n");

  const JointDecision& d = pipe.demodulate_joint(prefix);
  const char* mode = d.mode == DecisionMode::kAsk    ? "ASK"
                     : d.mode == DecisionMode::kFsk  ? "FSK"
                                                     : "joint";
  std::size_t errors = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) errors += (d.bits[i] != bits[i]);
  std::printf("  decoded via %s | ASK separation d'=%.2f | FSK margin %.2f | bit errors %zu/%zu\n\n",
              mode, d.ask_separation, d.fsk_margin, errors, bits.size());
}

}  // namespace

int main() {
  std::puts("=== Figure 9: measured signal at the AP, two channel cases ===");
  std::puts("paper: (a) unequal path losses -> ASK decodes; (b) equal losses -> FSK decodes");
  std::puts("");
  Rng rng(7);
  // (a) Beam 1 12 dB above Beam 0 (LoS vs NLoS).
  run_case("case (a): different path losses (ASK-decodable)",
           OtamChannel{{0.25, 0.0}, {1.0, 0.0}}, rng);
  // (b) both beams land at the same level.
  run_case("case (b): equal path losses (FSK rescues the packet)",
           OtamChannel{{0.6, 0.0}, {0.6, 0.0}}, rng);
  return 0;
}
