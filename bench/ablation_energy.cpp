// Ablation: Table 1's nJ/bit translated into battery life.
//
// The deployment question behind the paper's energy-efficiency claim:
// how long does a battery-powered camera live on each radio? The radio
// that empties its daily queue fastest sleeps longest.
#include <cstdio>
#include <vector>

#include "mmx/sim/energy.hpp"

using namespace mmx::sim;

int main() {
  const std::vector<RadioProfile> radios = {mmx_radio_profile(), wifi_radio_profile(),
                                            bluetooth_radio_profile()};
  struct Workload {
    const char* name;
    double bits_per_day;
  };
  const std::vector<Workload> loads = {
      {"sensor (1 kB/min)", 1024.0 * 8.0 * 60.0 * 24.0},
      {"motion cam (2 GB/day)", 16e9},
      {"stream cam (2 Mbps 24/7)", 2e6 * 86400.0},
      {"4K cam (12 Mbps 24/7)", 12e6 * 86400.0},
  };
  const double battery_wh = 10.0;  // ~2700 mAh at 3.7 V

  std::puts("=== Battery life on a 10 Wh pack (days; '-' = radio cannot carry it) ===\n");
  std::printf("  %-26s", "workload");
  for (const auto& r : radios) std::printf("%16s", r.name.c_str());
  std::printf("\n");
  for (const auto& w : loads) {
    std::printf("  %-26s", w.name);
    for (const auto& r : radios) {
      if (can_sustain(r, w.bits_per_day)) {
        std::printf("%16.1f", battery_life_days(r, w.bits_per_day, battery_wh));
      } else {
        std::printf("%16s", "-");
      }
    }
    std::printf("\n");
  }

  std::puts("\nreading: mmX's 11 nJ/bit + microwatt sleep beats WiFi on every video");
  std::puts("workload; Bluetooth wins only where its 1 Mbps ceiling suffices.");
  return 0;
}
