// Figure 7: VCO carrier frequency versus tuning voltage.
//
// Paper: the HMC533 sweeps 23.95 -> 24.25 GHz as the tuning voltage goes
// 3.5 -> 4.9 V, covering the whole 24 GHz ISM band with a gentle S-curve.
#include <cstdio>

#include "mmx/common/units.hpp"
#include "mmx/rf/vco.hpp"

int main() {
  mmx::rf::Vco vco;
  std::puts("=== Figure 7: VCO carrier frequency vs tuning voltage ===");
  std::puts("paper: 3.5 V -> 23.95 GHz ... 4.9 V -> 24.25 GHz (entire ISM band)");
  std::puts("");
  std::puts("  V_tune [V]   f_carrier [GHz]   Kv [MHz/V]");
  for (double v = 3.5; v <= 4.901; v += 0.1) {
    std::printf("  %9.2f   %14.4f   %9.1f\n", v, vco.frequency_hz(v) / 1e9,
                vco.sensitivity_hz_per_v(v) / 1e6);
  }
  std::puts("");
  std::printf("ISM band covered: %s (%.3f-%.3f GHz within tuning range)\n",
              (vco.covers(mmx::kIsmLowHz) && vco.covers(mmx::kIsmHighHz)) ? "YES" : "NO",
              mmx::kIsmLowHz / 1e9, mmx::kIsmHighHz / 1e9);
  const double kv = vco.sensitivity_hz_per_v(4.2);
  std::printf("FSK nudge check: 10 mV step at 4.2 V shifts the tone %.2f MHz\n", kv * 0.01 / 1e6);
  return 0;
}
