// Figure 8: measured radiation patterns of the node's two beams.
//
// Paper: Beam 1 peaks broadside; Beam 0 peaks at +/-30 degrees with a
// broadside null; the beams are mutually orthogonal; azimuth HPBW ~40
// degrees; field of view ~120 degrees.
#include <cstdio>

#include "mmx/antenna/mmx_beams.hpp"
#include "mmx/antenna/pattern_metrics.hpp"
#include "mmx/common/units.hpp"

using namespace mmx;
using namespace mmx::antenna;

int main() {
  MmxBeamPair pair;
  const Pattern p0 = [&](double t) { return pair.amplitude(0, t); };
  const Pattern p1 = [&](double t) { return pair.amplitude(1, t); };

  std::puts("=== Figure 8: node beam patterns (azimuth cut) ===");
  std::puts("paper: Beam 1 broadside; Beam 0 two arms at ~+/-30 deg; mutual nulls");
  std::puts("");
  std::puts("  azimuth [deg]   Beam 0 [dBi]   Beam 1 [dBi]");
  for (int deg = -180; deg <= 180; deg += 10) {
    const double t = deg_to_rad(static_cast<double>(deg));
    std::printf("  %12d   %12.1f   %12.1f\n", deg, pair.gain_dbi(0, t), pair.gain_dbi(1, t));
  }

  const PatternPeak peak1 = find_peak(p1, -kPi / 2.0, kPi / 2.0);
  const PatternPeak peak0p = find_peak(p0, 0.0, kPi / 2.0);
  const PatternPeak peak0n = find_peak(p0, -kPi / 2.0, 0.0);
  std::puts("");
  std::puts("--- pattern metrics (paper value -> measured) ---");
  std::printf("Beam 1 peak direction:     0 deg -> %+6.1f deg\n", rad_to_deg(peak1.angle));
  std::printf("Beam 0 peak directions: +/-30 deg -> %+6.1f / %+6.1f deg\n",
              rad_to_deg(peak0p.angle), rad_to_deg(peak0n.angle));
  std::printf("Beam 0 null at broadside:  deep  -> %5.1f dB below its peak\n",
              depth_below_peak_db(p0, 0.0));
  std::printf("Beam 1 null at +30 deg:    deep  -> %5.1f dB below its peak\n",
              depth_below_peak_db(p1, deg_to_rad(30.0)));
  std::printf("Pair orthogonality:        high  -> %5.1f dB worst cross-isolation\n",
              pair_orthogonality_db(p0, p1));
  std::printf("Beam 1 azimuth HPBW:      40 deg -> %5.1f deg\n",
              rad_to_deg(half_power_beamwidth(p1, peak1.angle)));
  std::printf("Beam 0 azimuth HPBW:      40 deg -> %5.1f deg\n",
              rad_to_deg(half_power_beamwidth(p0, peak0p.angle)));
  std::printf("Field of view (12 dB):   120 deg -> %5.1f deg\n",
              rad_to_deg(field_of_view(p0, p1, 12.0)));
  return 0;
}
