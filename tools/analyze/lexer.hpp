// C++ lexer for mmx_analyze.
//
// Not a compiler front end — a single-pass tokenizer that classifies
// exactly the things a source-level rule checker must never confuse:
// line/block comments, ordinary and raw string literals (with encoding
// prefixes), character literals, numeric literals with digit
// separators, and preprocessor logical lines (backslash continuations
// joined). Everything else becomes identifier / number / punctuator
// tokens with line:column positions.
#pragma once

#include <string_view>

#include "token.hpp"

namespace mmx::analyze {

/// Lex a whole translation unit. `rel` is carried through to findings.
LexedFile lex(std::string_view src, std::string rel);

}  // namespace mmx::analyze
