#include "lexer.hpp"

#include <cctype>
#include <cstddef>
#include <string>

namespace mmx::analyze {
namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// Encoding prefixes that may precede a string/char literal. `raw` is set
// when the prefix ends in R (raw string syntax follows).
bool literal_prefix(std::string_view id, bool& raw) {
  raw = !id.empty() && id.back() == 'R';
  const std::string_view enc = raw ? id.substr(0, id.size() - 1) : id;
  return enc.empty() || enc == "u8" || enc == "u" || enc == "U" || enc == "L";
}

// Multi-character punctuators, longest first (maximal munch).
constexpr const char* kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==", "!=",
    "&&",  "||",  "+=",  "-=",  "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", ".*",
};

class Lexer {
 public:
  Lexer(std::string_view src, LexedFile& out, std::vector<Token>& sink, std::size_t base_line,
        bool in_pp)
      : src_(src), out_(out), sink_(sink), line_(base_line), in_pp_(in_pp) {}

  void run() {
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\n') {
        newline();
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
        advance();
        continue;
      }
      if (c == '#' && !in_pp_ && at_line_start_) {
        preprocessor_line();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (ident_start(c)) {
        identifier_or_literal();
        continue;
      }
      if (digit(c) || (c == '.' && digit(peek(1)))) {
        number();
        continue;
      }
      if (c == '"') {
        string_literal(/*raw=*/false, i_);
        continue;
      }
      if (c == '\'') {
        char_literal(i_);
        continue;
      }
      punct();
    }
  }

 private:
  char peek(std::size_t ahead = 0) const {
    return i_ + ahead < src_.size() ? src_[i_ + ahead] : '\0';
  }
  void advance() {
    ++i_;
    ++col_;
  }
  void newline() {
    ++i_;
    ++line_;
    col_ = 1;
    at_line_start_ = true;
    out_.line_count = line_ > out_.line_count ? line_ : out_.line_count;
  }

  void push(TokKind kind, std::size_t begin, std::size_t line, std::size_t col) {
    sink_.push_back({kind, std::string(src_.substr(begin, i_ - begin)), line, col});
  }

  // -- comments -------------------------------------------------------------

  void line_comment() {
    const std::size_t line = line_;
    const std::size_t begin = i_;
    while (i_ < src_.size() && src_[i_] != '\n') advance();
    parse_suppression(src_.substr(begin, i_ - begin), line);
  }

  void block_comment() {
    const std::size_t line = line_;
    const std::size_t begin = i_;
    advance();  // '/'
    advance();  // '*'
    while (i_ < src_.size()) {
      if (src_[i_] == '*' && peek(1) == '/') {
        advance();
        advance();
        break;
      }
      if (src_[i_] == '\n')
        newline();
      else
        advance();
    }
    at_line_start_ = false;
    parse_suppression(src_.substr(begin, i_ - begin), line);
  }

  // `mmx-analyze: allow(rule[,rule]) -- reason` (or legacy `mmx-lint:`).
  void parse_suppression(std::string_view comment, std::size_t line) {
    std::size_t p = comment.find("mmx-analyze:");
    if (p == std::string_view::npos) p = comment.find("mmx-lint:");
    if (p == std::string_view::npos) return;
    const std::size_t open = comment.find("allow(", p);
    if (open == std::string_view::npos) return;
    const std::size_t close = comment.find(')', open);
    if (close == std::string_view::npos) return;
    std::string_view rules = comment.substr(open + 6, close - open - 6);
    const std::size_t dashes = comment.find("--", close);
    bool reasoned = false;
    if (dashes != std::string_view::npos) {
      for (std::size_t k = dashes + 2; k < comment.size(); ++k) {
        if (!std::isspace(static_cast<unsigned char>(comment[k]))) {
          reasoned = true;
          break;
        }
      }
    }
    while (!rules.empty()) {
      const std::size_t comma = rules.find(',');
      std::string_view one = rules.substr(0, comma);
      while (!one.empty() && std::isspace(static_cast<unsigned char>(one.front())))
        one.remove_prefix(1);
      while (!one.empty() && std::isspace(static_cast<unsigned char>(one.back())))
        one.remove_suffix(1);
      if (!one.empty()) out_.suppressions.push_back({std::string(one), line, reasoned});
      if (comma == std::string_view::npos) break;
      rules.remove_prefix(comma + 1);
    }
  }

  // -- literals -------------------------------------------------------------

  void identifier_or_literal() {
    const std::size_t begin = i_;
    const std::size_t line = line_, col = col_;
    while (i_ < src_.size() && ident_char(src_[i_])) advance();
    const std::string_view id = src_.substr(begin, i_ - begin);
    bool raw = false;
    if (peek() == '"' && literal_prefix(id, raw)) {
      string_literal(raw, begin);
      sink_.back().line = line;
      sink_.back().col = col;
      return;
    }
    if (peek() == '\'' && !raw && literal_prefix(id, raw) && !id.empty()) {
      char_literal(begin);
      sink_.back().line = line;
      sink_.back().col = col;
      return;
    }
    push(TokKind::kIdentifier, begin, line, col);
  }

  void string_literal(bool raw, std::size_t begin) {
    const std::size_t line = line_, col = col_;
    advance();  // opening '"'
    if (raw) {
      // R"delim( ... )delim"  — no escapes, newlines allowed.
      std::string delim;
      while (i_ < src_.size() && src_[i_] != '(') {
        delim += src_[i_];
        advance();
      }
      if (i_ < src_.size()) advance();  // '('
      const std::string closer = ")" + delim + "\"";
      while (i_ < src_.size() && src_.compare(i_, closer.size(), closer) != 0) {
        if (src_[i_] == '\n')
          newline();
        else
          advance();
      }
      for (std::size_t k = 0; k < closer.size() && i_ < src_.size(); ++k) advance();
      at_line_start_ = false;
    } else {
      while (i_ < src_.size() && src_[i_] != '"' && src_[i_] != '\n') {
        if (src_[i_] == '\\' && i_ + 1 < src_.size()) advance();
        advance();
      }
      if (i_ < src_.size() && src_[i_] == '"') advance();
    }
    push(TokKind::kString, begin, line, col);
  }

  void char_literal(std::size_t begin) {
    const std::size_t line = line_, col = col_;
    advance();  // opening '\''
    while (i_ < src_.size() && src_[i_] != '\'' && src_[i_] != '\n') {
      if (src_[i_] == '\\' && i_ + 1 < src_.size()) advance();
      advance();
    }
    if (i_ < src_.size() && src_[i_] == '\'') advance();
    push(TokKind::kChar, begin, line, col);
  }

  void number() {
    const std::size_t begin = i_;
    const std::size_t line = line_, col = col_;
    // pp-number: digits, identifier chars, digit separators, '.', and a
    // sign directly after an exponent marker. Swallows 1'000'000, 0x1Fp3,
    // 1e-9, 3.14f in one token — the regex scanner's '-as-char-literal
    // confusion cannot happen here.
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (ident_char(c) || c == '.' || (c == '\'' && ident_char(peek(1)))) {
        const bool exp = (c == 'e' || c == 'E' || c == 'p' || c == 'P');
        advance();
        if (exp && (peek() == '+' || peek() == '-')) advance();
        continue;
      }
      break;
    }
    push(TokKind::kNumber, begin, line, col);
  }

  void punct() {
    const std::size_t begin = i_;
    const std::size_t line = line_, col = col_;
    for (const char* p : kPuncts) {
      const std::size_t n = std::char_traits<char>::length(p);
      if (src_.compare(i_, n, p) == 0) {
        for (std::size_t k = 0; k < n; ++k) advance();
        push(TokKind::kPunct, begin, line, col);
        return;
      }
    }
    advance();
    push(TokKind::kPunct, begin, line, col);
  }

  // -- preprocessor ---------------------------------------------------------

  void preprocessor_line() {
    const std::size_t line = line_;
    // Collect the logical line: backslash-newline continuations joined.
    std::string text;
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\\' && (peek(1) == '\n' || (peek(1) == '\r' && peek(2) == '\n'))) {
        advance();
        while (i_ < src_.size() && src_[i_] != '\n') advance();
        newline();
        text += ' ';
        continue;
      }
      if (c == '\n') break;
      text += c;
      advance();
    }
    // Directive name.
    std::size_t p = 1;  // skip '#'
    while (p < text.size() && (text[p] == ' ' || text[p] == '\t')) ++p;
    std::size_t q = p;
    while (q < text.size() && ident_char(text[q])) ++q;
    const std::string_view directive = std::string_view(text).substr(p, q - p);
    if (directive == "include") {
      std::size_t r = q;
      while (r < text.size() && (text[r] == ' ' || text[r] == '\t')) ++r;
      if (r < text.size() && (text[r] == '"' || text[r] == '<')) {
        const char close = text[r] == '<' ? '>' : '"';
        const std::size_t end = text.find(close, r + 1);
        if (end != std::string::npos)
          out_.includes.push_back(
              {text.substr(r + 1, end - r - 1), /*angled=*/text[r] == '<', line});
      }
      return;  // include targets are not code tokens
    }
    // Tokenize the directive body (macro bodies still see token rules).
    Lexer sub(std::string_view(text).substr(q), out_, out_.pp_tokens, line, /*in_pp=*/true);
    sub.run();
  }

  std::string_view src_;
  LexedFile& out_;
  std::vector<Token>& sink_;
  std::size_t i_ = 0;
  std::size_t line_;
  std::size_t col_ = 1;
  bool at_line_start_ = true;
  bool in_pp_;
};

}  // namespace

LexedFile lex(std::string_view src, std::string rel) {
  LexedFile out;
  out.rel = std::move(rel);
  out.line_count = 1;
  Lexer lx(src, out, out.tokens, /*base_line=*/1, /*in_pp=*/false);
  lx.run();
  return out;
}

}  // namespace mmx::analyze
