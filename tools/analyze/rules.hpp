// Token-level rule families for mmx_analyze.
//
// Every rule walks the lexed token stream of one translation unit (plus
// the tokens of preprocessor bodies where that matters), so comments,
// strings and macro text can never produce false positives. The five
// historical `mmx_lint` rules live here re-based on tokens, joined by
// the hot-path allocation and determinism families. The repo-wide
// layering family is in include_graph.hpp.
#pragma once

#include <string>
#include <vector>

#include "token.hpp"

namespace mmx::analyze {

struct Finding {
  std::string rule;
  std::string file;
  std::size_t line = 0;
  std::string symbol;  // stable baseline key: the offending construct
  std::string message;
};

/// Where a file sits in the tree decides which rule families apply.
struct FileClass {
  bool in_src = false;         // under src/
  bool public_header = false;  // src/*/include/**/*.{hpp,h}
  bool float_hot = false;      // src/{dsp,phy,rf}: no-float scope
  bool dsp_kernel_tu = false;  // src/dsp/*.{cpp,cc}: trig-per-sample scope
  bool alloc_scope = false;    // src/: hot-path-alloc scope
  bool det_scope = false;      // src/sim/ or bench/: determinism scope
  bool mac_scope = false;      // src/mac/: mac-rng scope
  bool units_impl = false;     // units.{hpp,cpp}: owns dB arithmetic
  bool rng_impl = false;       // rng.hpp: owns the raw engine
};

FileClass classify(const std::string& rel);

// Rule families. Each appends findings; suppressions are applied later
// by the analyzer so rules stay pure.
void check_units_suffix(const LexedFile& f, std::vector<Finding>& out);
void check_rng_discipline(const LexedFile& f, std::vector<Finding>& out);
void check_no_float(const LexedFile& f, std::vector<Finding>& out);
void check_db_arith(const LexedFile& f, bool strict_pow10, std::vector<Finding>& out);
void check_trig_per_sample(const LexedFile& f, std::vector<Finding>& out);
void check_hot_path_alloc(const LexedFile& f, std::vector<Finding>& out);
void check_determinism(const LexedFile& f, std::vector<Finding>& out);
void check_mac_rng(const LexedFile& f, std::vector<Finding>& out);

/// Apply every per-file rule family the classification selects.
void run_file_rules(const LexedFile& f, const FileClass& cls, std::vector<Finding>& out);

/// Rule id -> one-line description, for SARIF metadata and --list-rules.
struct RuleInfo {
  const char* id;
  const char* summary;
};
const std::vector<RuleInfo>& rule_table();

}  // namespace mmx::analyze
