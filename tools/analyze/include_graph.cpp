#include "include_graph.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace mmx::analyze {
namespace {

// The enforced DAG, as ranks. An edge from -> to is legal iff
// rank(to) < rank(from) (or from == to). rf and antenna share a rank:
// they are siblings and may not include each other.
const std::map<std::string, int>& ranks() {
  static const std::map<std::string, int> kRanks = {
      {"common", 0},  {"obs", 1},     {"dsp", 2},     {"rf", 3},        {"antenna", 3},
      {"channel", 4}, {"phy", 5},     {"mac", 6},     {"sim", 7},       {"core", 8},
      {"baseline", 9}, {"tools", 100}, {"bench", 100}, {"tests", 100},  {"examples", 100},
  };
  return kRanks;
}

}  // namespace

void IncludeGraph::add_include(const std::string& from, const std::string& to,
                               const std::string& file, std::size_t line) {
  edges.push_back({from, to, file, line, /*link=*/false});
}

void IncludeGraph::add_link(const std::string& from, const std::string& to,
                            const std::string& file, std::size_t line) {
  edges.push_back({from, to, file, line, /*link=*/true});
  links[from].insert(to);
}

std::optional<std::string> module_of(const std::string& rel) {
  for (const char* top : {"tools/", "bench/", "tests/", "examples/"}) {
    if (rel.rfind(top, 0) == 0) return std::string(top, std::char_traits<char>::length(top) - 1);
  }
  if (rel.rfind("src/", 0) == 0) {
    const std::size_t slash = rel.find('/', 4);
    if (slash != std::string::npos) return rel.substr(4, slash - 4);
  }
  return std::nullopt;
}

std::optional<std::string> include_target_module(const std::string& include_path) {
  if (include_path.rfind("mmx/", 0) != 0) return std::nullopt;
  const std::size_t slash = include_path.find('/', 4);
  if (slash == std::string::npos) return std::nullopt;
  return include_path.substr(4, slash - 4);
}

std::optional<int> layer_rank(const std::string& module) {
  const auto it = ranks().find(module);
  if (it == ranks().end()) return std::nullopt;
  return it->second;
}

void parse_cmake_links(std::string_view text, const std::string& rel, IncludeGraph& graph) {
  static const std::string kCall = "target_link_libraries";
  std::size_t line = 1;
  std::size_t scanned = 0;
  std::size_t pos = 0;
  while ((pos = text.find(kCall, pos)) != std::string_view::npos) {
    for (; scanned < pos; ++scanned)
      if (text[scanned] == '\n') ++line;
    std::size_t p = pos + kCall.size();
    while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p]))) ++p;
    if (p >= text.size() || text[p] != '(') {
      pos = p;
      continue;
    }
    const std::size_t close = text.find(')', p);
    if (close == std::string_view::npos) break;
    std::istringstream args(std::string(text.substr(p + 1, close - p - 1)));
    std::string word, target;
    while (args >> word) {
      if (target.empty()) {
        target = word;
        continue;
      }
      if (word == "PUBLIC" || word == "PRIVATE" || word == "INTERFACE") continue;
      if (target.rfind("mmx_", 0) == 0 && word.rfind("mmx_", 0) == 0)
        graph.add_link(target.substr(4), word.substr(4), rel, line);
    }
    pos = close;
  }
}

namespace {

// Transitive closure of `links` reachable from `from`.
void reach(const std::map<std::string, std::set<std::string>>& links, const std::string& from,
           std::set<std::string>& out) {
  const auto it = links.find(from);
  if (it == links.end()) return;
  for (const std::string& to : it->second)
    if (out.insert(to).second) reach(links, to, out);
}

// DFS cycle detection over the module-level edge set; reports one
// representative cycle path.
bool find_cycle(const std::map<std::string, std::set<std::string>>& adj,
                const std::string& node, std::map<std::string, int>& state,
                std::vector<std::string>& stack, std::string& cycle) {
  state[node] = 1;
  stack.push_back(node);
  const auto it = adj.find(node);
  if (it != adj.end()) {
    for (const std::string& next : it->second) {
      if (next == node) continue;
      if (state[next] == 1) {
        std::string path = next;
        for (auto r = std::find(stack.begin(), stack.end(), next); r != stack.end(); ++r)
          if (*r != next) path += " -> " + *r;
        cycle = path + " -> " + next;
        return true;
      }
      if (state[next] == 0 && find_cycle(adj, next, state, stack, cycle)) return true;
    }
  }
  stack.pop_back();
  state[node] = 2;
  return false;
}

}  // namespace

void check_layering(const IncludeGraph& graph, std::vector<Finding>& out) {
  // 1) Every edge must descend the DAG.
  std::set<std::pair<std::string, std::string>> reported;
  for (const ModuleEdge& e : graph.edges) {
    if (e.from == e.to) continue;
    const std::optional<int> rf = layer_rank(e.from);
    const std::optional<int> rt = layer_rank(e.to);
    const char* kind = e.link ? "link" : "include";
    if (!rf || !rt) {
      out.push_back({"layering", e.file, e.line, e.from + "->" + e.to,
                     std::string("module '") + (!rf ? e.from : e.to) +
                         "' is not in the layering table; add it to docs/ARCHITECTURE.md and "
                         "tools/analyze/include_graph.cpp in the right layer"});
      continue;
    }
    if (*rt >= *rf) {
      out.push_back({"layering", e.file, e.line, e.from + "->" + e.to,
                     std::string(kind) + " edge " + e.from + " -> " + e.to +
                         " climbs the module DAG (docs/ARCHITECTURE.md): '" + e.from +
                         "' (layer " + std::to_string(*rf) + ") may only use layers below it, "
                         "and '" + e.to + "' is at layer " + std::to_string(*rt)});
    }
  }
  // 2) No cycles in the observed graph (belt and braces: rank violations
  // already preclude them, but a future table edit must not regress this).
  std::map<std::string, std::set<std::string>> adj;
  for (const ModuleEdge& e : graph.edges)
    if (e.from != e.to) adj[e.from].insert(e.to);
  std::map<std::string, int> state;
  for (const auto& [node, _] : adj) {
    if (state[node] != 0) continue;
    std::vector<std::string> stack;
    std::string cycle;
    if (find_cycle(adj, node, state, stack, cycle)) {
      out.push_back({"layering", "src/CMakeLists.txt", 0, "cycle",
                     "module dependency cycle: " + cycle});
      break;
    }
  }
  // 3) Every cross-module include from a src/ library must be backed by a
  // CMake link edge (directly or transitively), or the build only works
  // by include-path accident.
  for (const ModuleEdge& e : graph.edges) {
    if (e.link || e.from == e.to) continue;
    const std::optional<int> rf = layer_rank(e.from);
    if (!rf || *rf >= 100) continue;  // app-level dirs link ad hoc
    std::set<std::string> closure;
    reach(graph.links, e.from, closure);
    if (closure.count(e.to) > 0) continue;
    const auto key = std::make_pair(e.from, e.to);
    if (!reported.insert(key).second) continue;
    out.push_back({"layering", e.file, e.line, e.from + "->" + e.to,
                   e.from + " includes mmx/" + e.to + "/... but mmx_" + e.from +
                       " does not link mmx_" + e.to +
                       " (directly or transitively) in src/" + e.from + "/CMakeLists.txt"});
  }
}

std::string to_dot(const IncludeGraph& graph) {
  std::set<std::pair<std::string, std::string>> link_edges, include_edges;
  for (const ModuleEdge& e : graph.edges) {
    if (e.from == e.to) continue;
    (e.link ? link_edges : include_edges).insert({e.from, e.to});
  }
  std::ostringstream os;
  os << "digraph mmx_modules {\n  rankdir=BT;\n  node [shape=box, fontname=\"monospace\"];\n";
  for (const auto& [from, to] : link_edges)
    os << "  \"" << from << "\" -> \"" << to << "\";\n";
  for (const auto& [from, to] : include_edges)
    if (link_edges.count({from, to}) == 0)
      os << "  \"" << from << "\" -> \"" << to << "\" [style=dashed];\n";
  os << "}\n";
  return os.str();
}

}  // namespace mmx::analyze
