// Token model for the mmx_analyze lexer.
//
// The analyzer's rules operate on a real token stream — comments, string
// and character literals (including raw strings and digit separators),
// and preprocessor lines are classified during lexing — so a rule can
// never fire on prose in a doc comment or an example inside a string
// literal, the two false-positive classes the regex-era `mmx_lint`
// could not exclude.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mmx::analyze {

enum class TokKind {
  kIdentifier,  // identifiers and keywords (rules match on text)
  kNumber,      // integer / floating literal, digit separators consumed
  kString,      // ordinary or raw string literal (text = full lexeme)
  kChar,        // character literal
  kPunct,       // operator / punctuator (maximal munch for :: -> etc.)
};

struct Token {
  TokKind kind;
  std::string text;
  std::size_t line = 0;  // 1-based
  std::size_t col = 0;   // 1-based

  bool is_id(const char* s) const { return kind == TokKind::kIdentifier && text == s; }
  bool is_punct(const char* s) const { return kind == TokKind::kPunct && text == s; }
};

/// One `#include` directive, as the include-graph builder consumes it.
struct IncludeDirective {
  std::string path;    // between the delimiters, e.g. "mmx/dsp/fft.hpp"
  bool angled = false;  // <...> vs "..."
  std::size_t line = 0;
};

/// A rule suppression parsed from a comment:
///   // mmx-analyze: allow(<rule>) -- <reason>
/// (the historical `mmx-lint:` spelling is accepted as an alias).
/// `reasoned` is false when the `-- <reason>` tail is missing; the
/// analyzer reports that as a violation of its own.
struct Suppression {
  std::string rule;
  std::size_t line = 0;
  bool reasoned = false;
};

/// A fully lexed translation unit.
struct LexedFile {
  std::string rel;                         // repo-relative path, '/' separators
  std::vector<Token> tokens;               // code tokens, preprocessor excluded
  std::vector<Token> pp_tokens;            // tokens from preprocessor bodies (macro
                                           // definitions still see token rules)
  std::vector<IncludeDirective> includes;  // #include targets in order
  std::vector<Suppression> suppressions;   // allow() comments by line
  std::size_t line_count = 0;
};

}  // namespace mmx::analyze
