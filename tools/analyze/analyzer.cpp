#include "analyzer.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include "lexer.hpp"
#include "sarif.hpp"

namespace fs = std::filesystem;

namespace mmx::analyze {
namespace {

bool has_ext(const fs::path& p, std::initializer_list<const char*> exts) {
  const std::string e = p.extension().string();
  return std::any_of(exts.begin(), exts.end(), [&](const char* x) { return e == x; });
}

std::vector<fs::path> collect(const fs::path& dir, std::initializer_list<const char*> exts) {
  std::vector<fs::path> files;
  if (!fs::exists(dir)) return files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && has_ext(entry.path(), exts)) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

std::string trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return std::string(s);
}

}  // namespace

std::vector<BaselineEntry> parse_baseline(std::string_view text, const std::string& rel,
                                          std::vector<Finding>& meta) {
  std::vector<BaselineEntry> entries;
  std::size_t lineno = 0;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const std::size_t dashes = stripped.find("--");
    const std::string head = dashes == std::string::npos ? stripped : stripped.substr(0, dashes);
    const std::string reason =
        dashes == std::string::npos ? "" : trim(std::string_view(stripped).substr(dashes + 2));
    std::istringstream fields(head);
    BaselineEntry e;
    e.line = lineno;
    e.reasoned = !reason.empty();
    std::string extra;
    if (!(fields >> e.rule >> e.file >> e.symbol) || (fields >> extra)) {
      meta.push_back({"baseline-reason", rel, lineno, stripped,
                      "malformed baseline entry; expected '<rule> <file> <symbol> -- <reason>'"});
      continue;
    }
    if (!e.reasoned) {
      meta.push_back({"baseline-reason", rel, lineno, e.rule + " " + e.file,
                      "baseline entry without a reason ('-- <why>' required)"});
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

std::size_t apply_inline_suppressions(
    const std::map<std::string, std::vector<Suppression>>& by_file,
    std::vector<Finding>& findings) {
  std::size_t suppressed = 0;
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (Finding& f : findings) {
    bool drop = false;
    const auto it = by_file.find(f.file);
    if (it != by_file.end()) {
      for (const Suppression& s : it->second) {
        if (s.line == f.line && s.rule == f.rule) {
          drop = true;
          break;
        }
      }
    }
    if (drop)
      ++suppressed;
    else
      kept.push_back(std::move(f));
  }
  findings = std::move(kept);
  // A suppression without a reason is itself a finding, used or not.
  for (const auto& [file, sups] : by_file) {
    for (const Suppression& s : sups) {
      if (s.reasoned) continue;
      findings.push_back({"suppression-reason", file, s.line, s.rule,
                          "allow(" + s.rule + ") without a reason ('-- <why>' required)"});
    }
  }
  return suppressed;
}

std::size_t apply_baseline(std::vector<BaselineEntry>& entries, const std::string& baseline_rel,
                           std::vector<Finding>& findings) {
  std::size_t baselined = 0;
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (Finding& f : findings) {
    bool drop = false;
    for (BaselineEntry& e : entries) {
      if (e.rule == f.rule && e.file == f.file && e.symbol == f.symbol) {
        e.used = true;
        drop = true;
        break;
      }
    }
    if (drop)
      ++baselined;
    else
      kept.push_back(std::move(f));
  }
  findings = std::move(kept);
  for (const BaselineEntry& e : entries) {
    if (e.used) continue;
    findings.push_back({"stale-baseline", baseline_rel, e.line,
                        e.rule + " " + e.file + " " + e.symbol,
                        "baseline entry matches no finding anymore; delete it (" + e.rule + " " +
                            e.file + " " + e.symbol + ")"});
  }
  return baselined;
}

AnalyzeResult analyze_repo(const AnalyzeOptions& opts) {
  AnalyzeResult result;
  const fs::path root = fs::absolute(opts.root);
  if (!fs::exists(root / "src")) {
    result.io_error = true;
    result.findings.push_back(
        {"io", opts.root, 0, "root", "does not look like the mmX repo root (no src/)"});
    return result;
  }

  std::vector<Finding> findings;
  std::map<std::string, std::vector<Suppression>> suppressions;
  IncludeGraph graph;

  for (const char* top : {"src", "tests", "bench", "examples", "tools"}) {
    for (const fs::path& p : collect(root / top, {".hpp", ".cpp", ".h", ".cc"})) {
      std::string text;
      const std::string rel = fs::relative(p, root).generic_string();
      if (!read_file(p, text)) {
        findings.push_back({"io", rel, 0, "read", "could not read file"});
        continue;
      }
      ++result.files_scanned;
      LexedFile f = lex(text, rel);
      run_file_rules(f, classify(rel), findings);
      if (!f.suppressions.empty()) suppressions[rel] = f.suppressions;
      const std::optional<std::string> from = module_of(rel);
      if (from) {
        for (const IncludeDirective& inc : f.includes) {
          const std::optional<std::string> to = include_target_module(inc.path);
          if (to) graph.add_include(*from, *to, rel, inc.line);
        }
      }
    }
  }

  // Link edges from the library CMake files.
  if (fs::exists(root / "src")) {
    for (const auto& entry : fs::directory_iterator(root / "src")) {
      const fs::path cml = entry.path() / "CMakeLists.txt";
      if (!entry.is_directory() || !fs::exists(cml)) continue;
      std::string text;
      if (read_file(cml, text))
        parse_cmake_links(text, fs::relative(cml, root).generic_string(), graph);
    }
  }
  check_layering(graph, findings);

  result.inline_suppressed = apply_inline_suppressions(suppressions, findings);

  if (!opts.baseline_path.empty()) {
    std::string text;
    const std::string baseline_rel =
        fs::relative(fs::absolute(opts.baseline_path), root).generic_string();
    if (!read_file(opts.baseline_path, text)) {
      findings.push_back({"io", baseline_rel, 0, "read", "could not read baseline file"});
    } else {
      std::vector<BaselineEntry> entries = parse_baseline(text, baseline_rel, findings);
      result.baselined = apply_baseline(entries, baseline_rel, findings);
    }
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  result.findings = std::move(findings);

  if (!opts.sarif_path.empty()) {
    std::ofstream out(opts.sarif_path);
    if (out)
      out << to_sarif(result.findings);
    else
      result.io_error = true;
  }
  if (!opts.dot_path.empty()) {
    std::ofstream out(opts.dot_path);
    if (out)
      out << to_dot(graph);
    else
      result.io_error = true;
  }
  return result;
}

}  // namespace mmx::analyze
