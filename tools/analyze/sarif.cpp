#include "sarif.hpp"

#include <cstdio>
#include <sstream>

namespace mmx::analyze {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
        "Schemata/sarif-schema-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [{\n"
     << "    \"tool\": {\"driver\": {\n"
     << "      \"name\": \"mmx_analyze\",\n"
     << "      \"informationUri\": \"docs/STATIC_ANALYSIS.md\",\n"
     << "      \"rules\": [\n";
  const std::vector<RuleInfo>& rules = rule_table();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    os << "        {\"id\": \"" << rules[i].id << "\", \"shortDescription\": {\"text\": \""
       << json_escape(rules[i].summary) << "\"}}" << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  os << "      ]\n    }},\n    \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "      {\"ruleId\": \"" << json_escape(f.rule) << "\", \"level\": \"error\", "
       << "\"message\": {\"text\": \"" << json_escape(f.message) << "\"}, "
       << "\"locations\": [{\"physicalLocation\": {"
       << "\"artifactLocation\": {\"uri\": \"" << json_escape(f.file)
       << "\", \"uriBaseId\": \"SRCROOT\"}, "
       << "\"region\": {\"startLine\": " << (f.line > 0 ? f.line : 1) << "}}}]}"
       << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "    ]\n  }]\n}\n";
  return os.str();
}

}  // namespace mmx::analyze
