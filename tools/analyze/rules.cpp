#include "rules.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace mmx::analyze {
namespace {

bool starts_with(const std::string& s, const char* prefix) { return s.rfind(prefix, 0) == 0; }

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool has_ext(const std::string& rel, std::initializer_list<const char*> exts) {
  return std::any_of(exts.begin(), exts.end(), [&](const char* e) { return ends_with(rel, e); });
}

const Token* tok_at(const std::vector<Token>& t, std::size_t i) {
  return i < t.size() ? &t[i] : nullptr;
}

bool next_is_punct(const std::vector<Token>& t, std::size_t i, const char* p) {
  const Token* n = tok_at(t, i + 1);
  return n != nullptr && n->is_punct(p);
}

// Index of the matching ')' for the '(' at `open`, or npos.
std::size_t match_paren(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].is_punct("(")) ++depth;
    if (t[i].is_punct(")") && --depth == 0) return i;
  }
  return std::string::npos;
}

// Index just past a template argument list starting at `i` (which must be
// '<'); angle depth counted, '>>' closes two levels. Returns `i` if the
// token is not '<'.
std::size_t skip_template_args(const std::vector<Token>& t, std::size_t i) {
  if (i >= t.size() || !t[i].is_punct("<")) return i;
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (t[i].is_punct("<")) ++depth;
    if (t[i].is_punct(">")) --depth;
    if (t[i].is_punct(">>")) depth -= 2;
    if (depth <= 0) return i + 1;
  }
  return i;
}

}  // namespace

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

FileClass classify(const std::string& rel) {
  FileClass c;
  c.in_src = starts_with(rel, "src/");
  c.public_header =
      c.in_src && rel.find("/include/") != std::string::npos && has_ext(rel, {".hpp", ".h"});
  c.float_hot =
      starts_with(rel, "src/dsp/") || starts_with(rel, "src/phy/") || starts_with(rel, "src/rf/");
  c.dsp_kernel_tu = starts_with(rel, "src/dsp/") && has_ext(rel, {".cpp", ".cc"});
  c.alloc_scope = c.in_src;
  c.det_scope = starts_with(rel, "src/sim/") || starts_with(rel, "bench/");
  c.mac_scope = starts_with(rel, "src/mac/");
  c.units_impl =
      rel == "src/common/include/mmx/common/units.hpp" || rel == "src/common/units.cpp";
  c.rng_impl = rel == "src/common/include/mmx/common/rng.hpp";
  return c;
}

// ---------------------------------------------------------------------------
// units-suffix
// ---------------------------------------------------------------------------

namespace {

const std::set<std::string>& quantity_stems() {
  static const std::set<std::string> kStems = {
      "freq", "frequency", "power", "bandwidth", "gain", "loss",
      "snr",  "sinr",      "noise", "atten",     "attenuation",
  };
  return kStems;
}

const std::set<std::string>& unit_suffixes() {
  static const std::set<std::string> kSuffixes = {
      "hz",   "khz",  "mhz",   "ghz", "db",   "dbm", "dbi", "dbc", "dbr", "w",  "mw",
      "uw",   "nw",   "kw",    "rad", "deg",  "lin", "norm", "frac", "ratio", "scale",
      "bps",  "mbps", "m",     "mm",  "s",    "ms",  "us",  "ns",
  };
  return kSuffixes;
}

std::vector<std::string> split_components(std::string name) {
  while (!name.empty() && name.back() == '_') name.pop_back();  // member `_`
  std::vector<std::string> parts;
  std::stringstream ss(name);
  std::string part;
  while (std::getline(ss, part, '_'))
    if (!part.empty()) parts.push_back(part);
  return parts;
}

}  // namespace

void check_units_suffix(const LexedFile& f, std::vector<Finding>& out) {
  const std::vector<Token>& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].is_id("double")) continue;
    std::size_t j = i + 1;
    while (j < t.size() && (t[j].is_punct("&") || t[j].is_punct("&&") || t[j].is_punct("*"))) ++j;
    const Token* name_tok = tok_at(t, j);
    if (name_tok == nullptr || name_tok->kind != TokKind::kIdentifier) continue;
    const std::string& name = name_tok->text;
    if (name == "operator") continue;
    // A '(' right after the identifier means a function name: the rule
    // covers fields and parameters, not return types.
    if (next_is_punct(t, j, "(")) continue;
    const std::vector<std::string> parts = split_components(name);
    if (parts.empty()) continue;
    const bool has_stem = std::any_of(parts.begin(), parts.end(), [](const std::string& p) {
      return quantity_stems().count(p) > 0;
    });
    if (!has_stem || unit_suffixes().count(parts.back()) > 0) continue;
    out.push_back({"units-suffix", f.rel, name_tok->line, name,
                   "'double " + name + "' holds a physical quantity but has no unit suffix "
                   "(_hz/_db/_dbm/_w/_rad/_lin/...)"});
  }
}

// ---------------------------------------------------------------------------
// rng-discipline
// ---------------------------------------------------------------------------

namespace {

void rng_scan(const std::vector<Token>& t, const std::string& rel, std::vector<Finding>& out) {
  static const std::set<std::string> kEngines = {
      "random_device", "mt19937",     "mt19937_64", "default_random_engine",
      "minstd_rand",   "minstd_rand0", "knuth_b",
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier) continue;
    const std::string& id = t[i].text;
    std::string what;
    if (id == "rand") {
      const bool qualified = i >= 2 && t[i - 1].is_punct("::") && t[i - 2].is_id("std");
      if (qualified || next_is_punct(t, i, "(")) what = "std::rand()";
    } else if (id == "srand") {
      if (next_is_punct(t, i, "(")) what = "srand()";
    } else if (id == "time") {
      const Token* a = tok_at(t, i + 1);
      const Token* b = tok_at(t, i + 2);
      const Token* c = tok_at(t, i + 3);
      if (a != nullptr && a->is_punct("(") && b != nullptr && c != nullptr &&
          c->is_punct(")") &&
          (b->is_id("nullptr") || b->is_id("NULL") ||
           (b->kind == TokKind::kNumber && b->text == "0")))
        what = "time(nullptr) seeding";
    } else if (kEngines.count(id) > 0) {
      what = "raw std::" + id + " engine";
      if (id == "random_device") what = "std::random_device";
    } else if (id.rfind("ranlux", 0) == 0) {
      what = "raw " + id + " engine";
    }
    if (what.empty()) continue;
    out.push_back({"rng-discipline", rel, t[i].line, id,
                   what + " breaks run-to-run determinism; draw from an explicitly seeded "
                   "mmx::Rng instead"});
  }
}

}  // namespace

void check_rng_discipline(const LexedFile& f, std::vector<Finding>& out) {
  rng_scan(f.tokens, f.rel, out);
  rng_scan(f.pp_tokens, f.rel, out);
}

// ---------------------------------------------------------------------------
// no-float
// ---------------------------------------------------------------------------

namespace {

void float_scan(const std::vector<Token>& t, const std::string& rel, std::vector<Finding>& out) {
  for (const Token& tk : t) {
    if (!tk.is_id("float")) continue;
    out.push_back({"no-float", rel, tk.line, "float",
                   "'float' in a DSP/PHY/RF hot path; mmX numerics are validated in double "
                   "precision only"});
  }
}

}  // namespace

void check_no_float(const LexedFile& f, std::vector<Finding>& out) {
  float_scan(f.tokens, f.rel, out);
  float_scan(f.pp_tokens, f.rel, out);
}

// ---------------------------------------------------------------------------
// db-arith
// ---------------------------------------------------------------------------

namespace {

bool number_is(const Token& t, const char* a, const char* b) {
  return t.kind == TokKind::kNumber && (t.text == a || t.text == b);
}

bool is_ten(const Token& t) { return number_is(t, "10", "10.0") || t.text == "10."; }
bool is_ten_or_twenty(const Token& t) {
  return is_ten(t) || number_is(t, "20", "20.0") || t.text == "20.";
}

void db_scan(const std::vector<Token>& t, const std::string& rel, bool strict_pow10,
             std::vector<Finding>& out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    // pow(10, ... / 10) / pow(10, ... / 20): hand-rolled dB -> linear.
    if (t[i].is_id("pow") && next_is_punct(t, i, "(")) {
      const Token* base = tok_at(t, i + 2);
      if (base != nullptr && is_ten(*base)) {
        bool hit = strict_pow10;  // inside src/, any pow(10, ...) is suspect
        if (!hit) {
          const std::size_t close = match_paren(t, i + 1);
          for (std::size_t j = i + 3; j + 1 < t.size() && j < close; ++j) {
            if (t[j].is_punct("/") && is_ten_or_twenty(t[j + 1])) {
              hit = true;
              break;
            }
          }
        }
        if (hit) {
          out.push_back({"db-arith", rel, t[i].line, "pow10",
                         "hand-rolled dB<->linear conversion; use mmx::lin_to_db/db_to_lin/"
                         "watt_to_dbm/dbm_to_watt from units.hpp"});
          continue;
        }
      }
    }
    // 10*log10(x) / 20*log10(x): hand-rolled linear -> dB.
    if (is_ten_or_twenty(t[i]) && next_is_punct(t, i, "*")) {
      std::size_t j = i + 2;
      if (j + 1 < t.size() && t[j].is_id("std") && t[j + 1].is_punct("::")) j += 2;
      if (j < t.size() && t[j].is_id("log10") && next_is_punct(t, j, "(")) {
        out.push_back({"db-arith", rel, t[i].line, "log10",
                       "hand-rolled dB<->linear conversion; use mmx::lin_to_db/db_to_lin/"
                       "watt_to_dbm/dbm_to_watt from units.hpp"});
      }
    }
  }
}

}  // namespace

void check_db_arith(const LexedFile& f, bool strict_pow10, std::vector<Finding>& out) {
  db_scan(f.tokens, f.rel, strict_pow10, out);
  db_scan(f.pp_tokens, f.rel, strict_pow10, out);
}

// ---------------------------------------------------------------------------
// trig-per-sample
// ---------------------------------------------------------------------------

void check_trig_per_sample(const LexedFile& f, std::vector<Finding>& out) {
  const std::vector<Token>& t = f.tokens;
  int depth = 0;
  std::vector<int> loop_frames;  // brace depth of each enclosing loop body
  bool in_header = false;        // inside a for/while header's parentheses
  bool pending_body = false;     // header closed, body not yet begun
  int header_paren = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tk = t[i];
    const bool in_loop = !loop_frames.empty() || in_header || pending_body;
    if (in_loop && (tk.is_id("sin") || tk.is_id("cos")) && next_is_punct(t, i, "(")) {
      out.push_back({"trig-per-sample", f.rel, tk.line, tk.text,
                     "sin/cos in a loop of a DSP kernel TU; advance a unit phasor (one "
                     "complex multiply per sample, periodic resync) instead, or mark a "
                     "setup/design loop with a reasoned allow()"});
    }
    if (!in_header && (tk.is_id("for") || tk.is_id("while")) && next_is_punct(t, i, "(")) {
      in_header = true;
      header_paren = 0;
      continue;
    }
    if (in_header) {
      if (tk.is_punct("(")) ++header_paren;
      if (tk.is_punct(")") && --header_paren == 0) {
        in_header = false;
        pending_body = true;
      }
      continue;
    }
    if (tk.is_punct("{")) {
      ++depth;
      if (pending_body) {
        loop_frames.push_back(depth);
        pending_body = false;
      }
    } else if (tk.is_punct("}")) {
      if (!loop_frames.empty() && loop_frames.back() == depth) loop_frames.pop_back();
      --depth;
    } else if (tk.is_punct(";") && pending_body) {
      pending_body = false;  // braceless single-statement body ended
    }
  }
}

// ---------------------------------------------------------------------------
// hot-path-alloc
// ---------------------------------------------------------------------------

namespace {

// The zero-alloc fast-path surface (docs/DSP_FASTPATH.md and
// docs/GEOMETRY.md): every *_into kernel plus all methods of these
// classes. Constructors/destructors are setup time and exempt.
const std::set<std::string>& hot_classes() {
  static const std::set<std::string> kHot = {"FftPlan",       "Nco",      "GoertzelBin",
                                             "GoertzelBank",  "FramePipeline",
                                             "RoomPlan",      "PathList"};
  return kHot;
}

// Free functions that sit on the fast path without the *_into naming:
// the thread-local plan/pipeline caches called from inside hot loops.
const std::set<std::string>& hot_free_functions() {
  static const std::set<std::string> kHot = {"fft_plan", "thread_pipeline"};
  return kHot;
}

// Heap-backed value types whose construction inside a hot function is an
// allocation (workspace leases are the sanctioned alternative).
const std::set<std::string>& heap_types() {
  static const std::set<std::string> kTypes = {"Cvec", "Rvec", "Bits", "vector", "string"};
  return kTypes;
}

const std::set<std::string>& alloc_methods() {
  static const std::set<std::string> kMethods = {"push_back", "emplace_back", "resize",
                                                 "reserve",   "insert",       "assign",
                                                 "emplace",   "append"};
  return kMethods;
}

struct ClassFrame {
  std::string name;
  int open_depth;  // brace depth of the class body's '{'
};

void scan_hot_body(const std::vector<Token>& t, std::size_t begin, std::size_t end,
                   const std::string& fn, const std::string& rel, std::vector<Finding>& out) {
  for (std::size_t i = begin; i < end; ++i) {
    const Token& tk = t[i];
    if (tk.kind == TokKind::kIdentifier) {
      if (tk.text == "new") {
        out.push_back({"hot-path-alloc", rel, tk.line, "new",
                       "operator new in fast-path function '" + fn +
                           "'; lease from the DspWorkspace arena instead"});
        continue;
      }
      if (tk.text == "make_unique" || tk.text == "make_shared") {
        out.push_back({"hot-path-alloc", rel, tk.line, tk.text,
                       "std::" + tk.text + " allocates in fast-path function '" + fn + "'"});
        continue;
      }
      if (heap_types().count(tk.text) > 0) {
        // Declaration / temporary by value: `Cvec out(n)`, `Cvec{...}`,
        // `std::vector<T> tmp;`. References, pointers and nested-name uses
        // (`Cvec&`, `Cvec*`, `Cvec::`) do not construct.
        const std::size_t after = skip_template_args(t, i + 1);
        const Token* n = tok_at(t, after);
        const bool constructs =
            n != nullptr && (n->kind == TokKind::kIdentifier || n->is_punct("{") ||
                             (after == i + 1 && n->is_punct("(")));
        if (constructs && !tk.is_id("new")) {
          out.push_back({"hot-path-alloc", rel, tk.line, tk.text,
                         "constructs a heap-backed " + tk.text + " in fast-path function '" +
                             fn + "'; use a DspWorkspace lease or a caller-provided span"});
        }
        continue;
      }
    }
    if ((tk.is_punct(".") || tk.is_punct("->")) && i + 1 < end &&
        t[i + 1].kind == TokKind::kIdentifier && alloc_methods().count(t[i + 1].text) > 0 &&
        next_is_punct(t, i + 1, "(")) {
      out.push_back({"hot-path-alloc", rel, t[i + 1].line, t[i + 1].text,
                     "container ." + t[i + 1].text + "() may allocate in fast-path function '" +
                         fn + "'; size buffers at setup or lease from the workspace"});
      ++i;
    }
  }
}

}  // namespace

void check_hot_path_alloc(const LexedFile& f, std::vector<Finding>& out) {
  const std::vector<Token>& t = f.tokens;
  int depth = 0;
  std::vector<ClassFrame> classes;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tk = t[i];
    if (tk.is_punct("{")) {
      ++depth;
      continue;
    }
    if (tk.is_punct("}")) {
      if (!classes.empty() && classes.back().open_depth == depth) classes.pop_back();
      --depth;
      continue;
    }
    // Track `class X ... {` / `struct X ... {` context for in-class method
    // definitions (skips forward declarations, which end in ';').
    if ((tk.is_id("class") || tk.is_id("struct")) && i + 1 < t.size() &&
        t[i + 1].kind == TokKind::kIdentifier) {
      for (std::size_t j = i + 2; j < t.size(); ++j) {
        if (t[j].is_punct(";") || t[j].is_punct(")")) break;  // fwd-decl / param
        if (t[j].is_punct("{")) {
          classes.push_back({t[i + 1].text, depth + 1});
          break;
        }
      }
      continue;
    }
    // Candidate function definition: identifier '(' ... ')' [stuff] '{'.
    if (tk.kind != TokKind::kIdentifier || !next_is_punct(t, i, "(")) continue;
    const std::string& name = tk.text;
    std::string qual;
    if (i >= 2 && t[i - 1].is_punct("::") && t[i - 2].kind == TokKind::kIdentifier)
      qual = t[i - 2].text;
    else if (!classes.empty())
      qual = classes.back().name;
    const bool dtor = i >= 1 && t[i - 1].is_punct("~");
    const bool hot = ends_with(name, "_into") ||
                     (qual.empty() && hot_free_functions().count(name) > 0) ||
                     (hot_classes().count(qual) > 0 && name != qual && !dtor);
    if (!hot) continue;
    const std::size_t close = match_paren(t, i + 1);
    if (close == std::string::npos) continue;
    // Walk past cv-qualifiers / noexcept / trailing return to the body
    // '{'; a ';', '=', ',' or ')' first means declaration or call site.
    std::size_t k = close + 1;
    bool is_def = false;
    int trail_paren = 0;
    for (; k < t.size(); ++k) {
      if (trail_paren == 0 && t[k].is_punct("{")) {
        is_def = true;
        break;
      }
      if (trail_paren == 0 && (t[k].is_punct(";") || t[k].is_punct("=") || t[k].is_punct(",") ||
                               t[k].is_punct(")") || t[k].is_punct(":")))
        break;
      if (t[k].is_punct("(")) ++trail_paren;
      if (t[k].is_punct(")")) --trail_paren;
    }
    if (!is_def) continue;
    // Body extent.
    int body_depth = 0;
    std::size_t end = k;
    for (; end < t.size(); ++end) {
      if (t[end].is_punct("{")) ++body_depth;
      if (t[end].is_punct("}") && --body_depth == 0) break;
    }
    const std::string full = qual.empty() ? name : qual + "::" + name;
    scan_hot_body(t, k + 1, end, full, f.rel, out);
    i = end;
  }
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

void check_determinism(const LexedFile& f, std::vector<Finding>& out) {
  static const std::set<std::string> kUnordered = {"unordered_map", "unordered_set",
                                                   "unordered_multimap", "unordered_multiset"};
  static const std::set<std::string> kOrdered = {"map", "set", "multimap", "multiset"};
  const std::vector<Token>& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdentifier) continue;
    const std::string& id = t[i].text;
    if (kUnordered.count(id) > 0) {
      out.push_back({"determinism", f.rel, t[i].line, id,
                     "std::" + id + " in result-producing code: iteration order varies across "
                     "standard libraries and runs, breaking the sweep engine's bit-identical "
                     "output guarantee; use a sorted or id-indexed container"});
      continue;
    }
    if (id == "uintptr_t" || id == "intptr_t") {
      out.push_back({"determinism", f.rel, t[i].line, id,
                     "pointer-to-integer conversion in result-producing code: addresses "
                     "change run to run, so any value derived from them is nondeterministic"});
      continue;
    }
    if (kOrdered.count(id) > 0 && next_is_punct(t, i, "<")) {
      // Pointer-keyed ordered container: ordering by address is ASLR-dependent.
      int angle = 0;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (t[j].is_punct("<")) ++angle;
        if (t[j].is_punct(">")) --angle;
        if (t[j].is_punct(">>")) angle -= 2;
        if (angle <= 0) break;
        if (angle == 1 && t[j].is_punct(",")) break;  // key type ends
        if (t[j].is_punct("*")) {
          out.push_back({"determinism", f.rel, t[i].line, id,
                         "std::" + id + " keyed on a pointer orders elements by address, "
                         "which differs run to run; key on a stable id instead"});
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// mac-rng
// ---------------------------------------------------------------------------

namespace {

// The MAC layer draws no randomness of its own: every admission, deny
// hint and backoff schedule is a pure function of the request sequence,
// which is what keeps scale reports bit-identical at any thread count
// (docs/ROBUSTNESS.md). The only sanctioned shape is a caller-supplied
// reference — `Rng&` — whose counter-derived stream the scenario layer
// built. Construction (`Rng r`, `Rng(...)`, `Rng::stream(...)`) or
// pointer forms inside src/mac/ mean the MAC grew its own entropy
// source, and the determinism contract is one merge away from breaking.
void mac_rng_scan(const std::vector<Token>& t, const std::string& rel,
                  std::vector<Finding>& out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].is_id("Rng")) continue;
    if (next_is_punct(t, i, "&")) continue;  // caller-supplied reference
    out.push_back({"mac-rng", rel, t[i].line, "Rng",
                   "mmx::mac must not own or construct an Rng: AP-side decisions are pure "
                   "functions of the request sequence; take a caller-supplied 'Rng&' whose "
                   "counter-derived stream the scenario layer built"});
  }
}

}  // namespace

void check_mac_rng(const LexedFile& f, std::vector<Finding>& out) {
  mac_rng_scan(f.tokens, f.rel, out);
  mac_rng_scan(f.pp_tokens, f.rel, out);
}

// ---------------------------------------------------------------------------
// Dispatch + rule table
// ---------------------------------------------------------------------------

void run_file_rules(const LexedFile& f, const FileClass& cls, std::vector<Finding>& out) {
  if (!cls.rng_impl) check_rng_discipline(f, out);
  if (!cls.units_impl) check_db_arith(f, /*strict_pow10=*/cls.in_src, out);
  if (cls.public_header) check_units_suffix(f, out);
  if (cls.float_hot) check_no_float(f, out);
  if (cls.dsp_kernel_tu) check_trig_per_sample(f, out);
  if (cls.alloc_scope) check_hot_path_alloc(f, out);
  if (cls.det_scope) check_determinism(f, out);
  if (cls.mac_scope) check_mac_rng(f, out);
}

const std::vector<RuleInfo>& rule_table() {
  static const std::vector<RuleInfo> kRules = {
      {"units-suffix",
       "double fields/params holding physical quantities need a unit suffix in public headers"},
      {"rng-discipline",
       "all randomness flows through an explicitly seeded mmx::Rng; no raw engines or wall-clock "
       "seeds"},
      {"no-float", "no float in src/dsp, src/phy, src/rf; numerics are double-precision only"},
      {"db-arith", "dB<->linear arithmetic lives only in units.{hpp,cpp}"},
      {"trig-per-sample", "no sin/cos inside loops of DSP kernel TUs; use the phasor fast path"},
      {"layering", "module include/link edges must follow the docs/ARCHITECTURE.md DAG"},
      {"hot-path-alloc",
       "no heap allocation in *_into kernels or FftPlan/Nco/Goertzel*/FramePipeline/RoomPlan/"
       "PathList methods"},
      {"determinism",
       "no unordered iteration, pointer keys or address-derived values in src/sim and bench/"},
      {"mac-rng",
       "src/mac draws no randomness of its own: Rng appears only as a caller-supplied Rng&"},
      {"suppression-reason", "every allow() suppression must carry a '-- <why>' reason"},
      {"baseline-reason", "every baseline entry must carry a '-- <why>' reason"},
      {"stale-baseline", "baseline entries that no longer match any finding must be removed"},
      {"io", "source files must be readable"},
  };
  return kRules;
}

}  // namespace mmx::analyze
