// mmx_analyze — token-aware cross-TU static analyzer for the mmX repo.
//
// Usage:
//   mmx_analyze <repo_root> [--baseline <file>] [--no-baseline]
//               [--sarif <out.sarif>] [--dump-graph <out.dot>]
//               [--list-rules]
//
// Exit codes: 0 clean (or fully suppressed/baselined), 1 findings,
// 2 usage or I/O error. The default baseline is
// <repo_root>/tools/analyze/baseline.txt when it exists.
//
// Rule families and the suppression/baseline formats are documented in
// docs/STATIC_ANALYSIS.md.

#include <filesystem>
#include <iostream>
#include <string>

#include "analyzer.hpp"

int main(int argc, char** argv) {
  using namespace mmx::analyze;
  AnalyzeOptions opts;
  bool no_baseline = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "mmx_analyze: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--baseline")
      opts.baseline_path = value("--baseline");
    else if (arg == "--no-baseline")
      no_baseline = true;
    else if (arg == "--sarif")
      opts.sarif_path = value("--sarif");
    else if (arg == "--dump-graph")
      opts.dot_path = value("--dump-graph");
    else if (arg == "--list-rules") {
      for (const RuleInfo& r : rule_table()) std::cout << r.id << "\t" << r.summary << "\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "mmx_analyze: unknown flag " << arg << "\n";
      return 2;
    } else if (opts.root.empty()) {
      opts.root = arg;
    } else {
      std::cerr << "mmx_analyze: unexpected argument " << arg << "\n";
      return 2;
    }
  }
  if (opts.root.empty()) {
    std::cerr << "usage: mmx_analyze <repo_root> [--baseline <file>] [--no-baseline]\n"
              << "                   [--sarif <out.sarif>] [--dump-graph <out.dot>] "
                 "[--list-rules]\n";
    return 2;
  }
  if (opts.baseline_path.empty() && !no_baseline) {
    const std::filesystem::path def =
        std::filesystem::path(opts.root) / "tools" / "analyze" / "baseline.txt";
    if (std::filesystem::exists(def)) opts.baseline_path = def.string();
  }
  if (no_baseline) opts.baseline_path.clear();

  const AnalyzeResult result = analyze_repo(opts);
  for (const Finding& f : result.findings) {
    std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  }
  std::cerr << "mmx_analyze: " << result.files_scanned << " files scanned, "
            << result.findings.size() << " finding(s), " << result.inline_suppressed
            << " suppressed inline, " << result.baselined << " baselined\n";
  if (result.io_error) return 2;
  return result.findings.empty() ? 0 : 1;
}
