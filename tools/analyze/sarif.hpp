// Minimal SARIF 2.1.0 serializer for mmx_analyze findings, so the CI
// static-analysis job can surface findings as GitHub code-scanning
// annotations on the PR diff.
#pragma once

#include <string>
#include <vector>

#include "rules.hpp"

namespace mmx::analyze {

/// Serialize findings as a SARIF 2.1.0 log (one run, one driver). File
/// paths are emitted repo-relative with uriBaseId SRCROOT.
std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace mmx::analyze
