// Repo-wide module graph for the layering rule family.
//
// Two edge sources feed one graph: `#include "mmx/<module>/..."` lines
// from every TU, and `target_link_libraries(mmx_<module> ...)` edges
// from `src/*/CMakeLists.txt`. The layering check enforces the
// docs/ARCHITECTURE.md DAG
//
//   common -> dsp -> {rf, antenna} -> channel -> phy -> mac -> sim
//          -> core -> baseline
//
// (tools / bench / tests / examples sit on top and may use anything),
// rejects any edge that climbs the DAG or forms a cycle, and requires
// every cross-module include in src/ to be backed by a CMake link edge.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "rules.hpp"

namespace mmx::analyze {

struct ModuleEdge {
  std::string from;
  std::string to;
  std::string file;      // provenance for the finding
  std::size_t line = 0;
  bool link = false;     // CMake link edge vs include edge
};

struct IncludeGraph {
  std::vector<ModuleEdge> edges;
  // Observed direct link deps per module (from CMake).
  std::map<std::string, std::set<std::string>> links;

  void add_include(const std::string& from, const std::string& to, const std::string& file,
                   std::size_t line);
  void add_link(const std::string& from, const std::string& to, const std::string& file,
                std::size_t line);
};

/// Module that owns a repo-relative path: "src/dsp/fft.cpp" -> "dsp",
/// "bench/harness.cpp" -> "bench". nullopt for anything else.
std::optional<std::string> module_of(const std::string& rel);

/// Module an include target belongs to: "mmx/phy/ask.hpp" -> "phy".
/// nullopt for system and non-mmx includes.
std::optional<std::string> include_target_module(const std::string& include_path);

/// Layer rank. Lower layers may be used by higher ones; equal-rank
/// modules are independent siblings. App-level dirs get a rank above
/// every library. nullopt for modules not in the table.
std::optional<int> layer_rank(const std::string& module);

/// Parse `target_link_libraries(mmx_X ... mmx_Y ...)` edges out of one
/// CMakeLists.txt body.
void parse_cmake_links(std::string_view text, const std::string& rel, IncludeGraph& graph);

/// Run every layering check over the assembled graph.
void check_layering(const IncludeGraph& graph, std::vector<Finding>& out);

/// Graphviz dump of the module graph (solid = link, dashed = include).
std::string to_dot(const IncludeGraph& graph);

}  // namespace mmx::analyze
