// mmx_analyze driver: repo walk, suppression and baseline application.
//
// The flow is: lex every TU under {src, tests, bench, examples, tools}
// -> run the per-file token rules -> assemble the module graph (mmx/
// includes + src/*/CMakeLists.txt link edges) and run the layering
// checks -> drop findings covered by inline `allow()` comments or by
// the checked-in baseline -> report (human text, SARIF, DOT graph).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "include_graph.hpp"
#include "rules.hpp"
#include "token.hpp"

namespace mmx::analyze {

/// One reasoned entry of the checked-in baseline file. Format (one per
/// line, '#' comments):
///   <rule> <file> <symbol> -- <reason>
struct BaselineEntry {
  std::string rule;
  std::string file;
  std::string symbol;
  std::size_t line = 0;  // line in the baseline file itself
  bool reasoned = false;
  bool used = false;
};

/// Parse a baseline file body. Malformed or unreasoned entries append
/// meta-findings (`baseline-reason`) against `rel`.
std::vector<BaselineEntry> parse_baseline(std::string_view text, const std::string& rel,
                                          std::vector<Finding>& meta);

/// Drop findings matched by a same-line allow() for the same rule.
/// Unreasoned suppressions add `suppression-reason` findings. Returns
/// the number of findings suppressed.
std::size_t apply_inline_suppressions(
    const std::map<std::string, std::vector<Suppression>>& by_file,
    std::vector<Finding>& findings);

/// Drop findings matched by (rule, file, symbol) baseline entries; mark
/// entries used; report stale ones. Returns the number baselined.
std::size_t apply_baseline(std::vector<BaselineEntry>& entries, const std::string& baseline_rel,
                           std::vector<Finding>& findings);

struct AnalyzeOptions {
  std::string root;
  std::string baseline_path;  // empty: no baseline
  std::string sarif_path;     // empty: no SARIF output
  std::string dot_path;       // empty: no graph dump
};

struct AnalyzeResult {
  std::vector<Finding> findings;  // surviving findings, sorted
  std::size_t files_scanned = 0;
  std::size_t inline_suppressed = 0;
  std::size_t baselined = 0;
  bool io_error = false;  // root missing / outputs unwritable
};

AnalyzeResult analyze_repo(const AnalyzeOptions& opts);

}  // namespace mmx::analyze
