// sweep_gate — CI's parallel-speedup gate.
//
// Reads two JSON reports written by the bench harness (a serial run and
// a parallel run of the same sweep), computes the throughput speedup and
// fails if it is under the threshold. Always prints the numbers — and
// appends a markdown row to $GITHUB_STEP_SUMMARY when set — so the perf
// lane leaves an advisory comment whether or not the gate trips.
//
// The same binary also serves as the obs-overhead gate: with the plain
// run as SERIAL and the instrumented run as PARALLEL, `--min-speedup
// 0.98` asserts the instrumented run keeps >= 98% of the throughput.
//
// usage: sweep_gate SERIAL.json PARALLEL.json [--min-speedup X]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "report_json.hpp"

namespace {

using mmx::tools::Report;

void append_step_summary(const Report& serial, const Report& parallel, double speedup,
                         double min_speedup, bool pass) {
  const char* path = std::getenv("GITHUB_STEP_SUMMARY");
  if (path == nullptr || *path == '\0') return;
  std::ofstream out(path, std::ios::app);
  if (!out) return;
  out << "### Sweep speedup gate — " << parallel.bench << (pass ? " ✅\n" : " ❌\n\n");
  out << "| run | trials | threads | wall [s] | trials/s |\n";
  out << "|---|---|---|---|---|\n";
  char line[256];
  std::snprintf(line, sizeof(line), "| serial | %lld | %lld | %.3f | %.1f |\n", serial.trials,
                serial.threads, serial.wall_s, serial.trials_per_s);
  out << line;
  std::snprintf(line, sizeof(line), "| parallel | %lld | %lld | %.3f | %.1f |\n",
                parallel.trials, parallel.threads, parallel.wall_s, parallel.trials_per_s);
  out << line;
  std::snprintf(line, sizeof(line), "\n**speedup: %.2fx** (gate: >= %.2fx)\n", speedup,
                min_speedup);
  out << line;
}

}  // namespace

int main(int argc, char** argv) {
  double min_speedup = 1.5;
  const char* serial_path = nullptr;
  const char* parallel_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::strtod(argv[++i], nullptr);
    } else if (serial_path == nullptr) {
      serial_path = argv[i];
    } else if (parallel_path == nullptr) {
      parallel_path = argv[i];
    } else {
      std::fprintf(stderr, "usage: sweep_gate SERIAL.json PARALLEL.json [--min-speedup X]\n");
      return 2;
    }
  }
  if (serial_path == nullptr || parallel_path == nullptr) {
    std::fprintf(stderr, "usage: sweep_gate SERIAL.json PARALLEL.json [--min-speedup X]\n");
    return 2;
  }

  Report serial;
  Report parallel;
  if (!mmx::tools::load_report("sweep_gate", serial_path, serial) ||
      !mmx::tools::load_report("sweep_gate", parallel_path, parallel))
    return 2;
  if (serial.bench != parallel.bench || serial.trials != parallel.trials) {
    std::fprintf(stderr, "sweep_gate: reports disagree (bench '%s'/%lld trials vs '%s'/%lld)\n",
                 serial.bench.c_str(), serial.trials, parallel.bench.c_str(), parallel.trials);
    return 2;
  }
  if (serial.trials_per_s <= 0.0) {
    std::fprintf(stderr, "sweep_gate: serial report has no throughput\n");
    return 2;
  }

  const double speedup = parallel.trials_per_s / serial.trials_per_s;
  const bool pass = speedup >= min_speedup;
  std::printf("sweep_gate: %s, %lld trials\n", serial.bench.c_str(), serial.trials);
  std::printf("  serial:   %lld thread(s), %8.3f s wall, %10.1f trials/s\n", serial.threads,
              serial.wall_s, serial.trials_per_s);
  std::printf("  parallel: %lld thread(s), %8.3f s wall, %10.1f trials/s\n", parallel.threads,
              parallel.wall_s, parallel.trials_per_s);
  std::printf("  speedup:  %.2fx (gate: >= %.2fx) -> %s\n", speedup, min_speedup,
              pass ? "PASS" : "FAIL");
  append_step_summary(serial, parallel, speedup, min_speedup, pass);
  if (!pass) {
    std::printf("::error::parallel sweep is only %.2fx faster than serial (gate %.2fx)\n",
                speedup, min_speedup);
    return 1;
  }
  return 0;
}
