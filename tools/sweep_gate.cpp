// sweep_gate — CI's parallel-speedup gate.
//
// Reads two JSON reports written by the bench harness (a serial run and
// a parallel run of the same sweep), computes the throughput speedup and
// fails if it is under the threshold. Always prints the numbers — and
// appends a markdown row to $GITHUB_STEP_SUMMARY when set — so the perf
// lane leaves an advisory comment whether or not the gate trips.
//
// usage: sweep_gate SERIAL.json PARALLEL.json [--min-speedup X]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct Report {
  std::string bench;
  long long trials = 0;
  long long threads = 0;
  double wall_s = 0.0;
  double trials_per_s = 0.0;
};

// The harness writes these files (bench/harness.cpp), so a key scan is
// enough — this is not a general JSON parser.
bool find_number(const std::string& text, const char* key, double& out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  const char* start = text.c_str() + pos + needle.size();
  char* end = nullptr;
  out = std::strtod(start, &end);
  return end != start;
}

bool find_string(const std::string& text, const char* key, std::string& out) {
  const std::string needle = std::string("\"") + key + "\": \"";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  const std::size_t begin = pos + needle.size();
  const std::size_t close = text.find('"', begin);
  if (close == std::string::npos) return false;
  out = text.substr(begin, close - begin);
  return true;
}

bool load_report(const char* path, Report& r) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "sweep_gate: cannot open '%s'\n", path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  double trials = 0.0;
  double threads = 0.0;
  if (!find_string(text, "bench", r.bench) || !find_number(text, "trials", trials) ||
      !find_number(text, "threads", threads) || !find_number(text, "wall_s", r.wall_s) ||
      !find_number(text, "trials_per_s", r.trials_per_s)) {
    std::fprintf(stderr, "sweep_gate: '%s' is not a bench-harness JSON report\n", path);
    return false;
  }
  r.trials = static_cast<long long>(trials);
  r.threads = static_cast<long long>(threads);
  return true;
}

void append_step_summary(const Report& serial, const Report& parallel, double speedup,
                         double min_speedup, bool pass) {
  const char* path = std::getenv("GITHUB_STEP_SUMMARY");
  if (path == nullptr || *path == '\0') return;
  std::ofstream out(path, std::ios::app);
  if (!out) return;
  out << "### Sweep speedup gate — " << parallel.bench << (pass ? " ✅\n" : " ❌\n\n");
  out << "| run | trials | threads | wall [s] | trials/s |\n";
  out << "|---|---|---|---|---|\n";
  char line[256];
  std::snprintf(line, sizeof(line), "| serial | %lld | %lld | %.3f | %.1f |\n", serial.trials,
                serial.threads, serial.wall_s, serial.trials_per_s);
  out << line;
  std::snprintf(line, sizeof(line), "| parallel | %lld | %lld | %.3f | %.1f |\n",
                parallel.trials, parallel.threads, parallel.wall_s, parallel.trials_per_s);
  out << line;
  std::snprintf(line, sizeof(line), "\n**speedup: %.2fx** (gate: >= %.2fx)\n", speedup,
                min_speedup);
  out << line;
}

}  // namespace

int main(int argc, char** argv) {
  double min_speedup = 1.5;
  const char* serial_path = nullptr;
  const char* parallel_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::strtod(argv[++i], nullptr);
    } else if (serial_path == nullptr) {
      serial_path = argv[i];
    } else if (parallel_path == nullptr) {
      parallel_path = argv[i];
    } else {
      std::fprintf(stderr, "usage: sweep_gate SERIAL.json PARALLEL.json [--min-speedup X]\n");
      return 2;
    }
  }
  if (serial_path == nullptr || parallel_path == nullptr) {
    std::fprintf(stderr, "usage: sweep_gate SERIAL.json PARALLEL.json [--min-speedup X]\n");
    return 2;
  }

  Report serial;
  Report parallel;
  if (!load_report(serial_path, serial) || !load_report(parallel_path, parallel)) return 2;
  if (serial.bench != parallel.bench || serial.trials != parallel.trials) {
    std::fprintf(stderr, "sweep_gate: reports disagree (bench '%s'/%lld trials vs '%s'/%lld)\n",
                 serial.bench.c_str(), serial.trials, parallel.bench.c_str(), parallel.trials);
    return 2;
  }
  if (serial.trials_per_s <= 0.0) {
    std::fprintf(stderr, "sweep_gate: serial report has no throughput\n");
    return 2;
  }

  const double speedup = parallel.trials_per_s / serial.trials_per_s;
  const bool pass = speedup >= min_speedup;
  std::printf("sweep_gate: %s, %lld trials\n", serial.bench.c_str(), serial.trials);
  std::printf("  serial:   %lld thread(s), %8.3f s wall, %10.1f trials/s\n", serial.threads,
              serial.wall_s, serial.trials_per_s);
  std::printf("  parallel: %lld thread(s), %8.3f s wall, %10.1f trials/s\n", parallel.threads,
              parallel.wall_s, parallel.trials_per_s);
  std::printf("  speedup:  %.2fx (gate: >= %.2fx) -> %s\n", speedup, min_speedup,
              pass ? "PASS" : "FAIL");
  append_step_summary(serial, parallel, speedup, min_speedup, pass);
  if (!pass) {
    std::printf("::error::parallel sweep is only %.2fx faster than serial (gate %.2fx)\n",
                speedup, min_speedup);
    return 1;
  }
  return 0;
}
