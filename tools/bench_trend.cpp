// bench_trend — CI's perf-trend lane.
//
// Compares freshly generated bench-harness JSON reports against the
// committed baselines in bench/baselines/ (matched by file name) and
// fails when any bench's throughput regressed by more than the allowed
// fraction. Speedups and small wobbles only change the report; a fresh
// report with no baseline warns but does not gate, so adding a bench
// does not require landing its baseline in the same change.
//
// Prints a markdown delta table to stdout and appends the same table to
// $GITHUB_STEP_SUMMARY when set.
//
// usage: bench_trend --baselines DIR FRESH.json... [--max-regression 0.20]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "report_json.hpp"

namespace {

using mmx::tools::Report;

[[noreturn]] void usage(int exit_code) {
  std::fprintf(stderr,
               "usage: bench_trend --baselines DIR FRESH.json... [--max-regression F]\n"
               "  --baselines DIR     directory of committed baseline reports; each fresh\n"
               "                      report is matched to DIR/<its basename>\n"
               "  --max-regression F  fail when trials_per_s drops by more than this\n"
               "                      fraction of the baseline (default 0.20)\n");
  std::exit(exit_code);
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

struct Row {
  std::string bench;
  std::string file;
  double base_tps = 0.0;
  double fresh_tps = 0.0;
  bool have_baseline = false;
  bool regressed = false;
};

std::string markdown_table(const std::vector<Row>& rows, double max_regression) {
  std::ostringstream out;
  out << "### Bench perf trend (gate: regression <= " << static_cast<int>(max_regression * 100)
      << "%)\n\n";
  out << "| bench | baseline trials/s | fresh trials/s | delta | status |\n";
  out << "|---|---|---|---|---|\n";
  char line[512];
  for (const Row& r : rows) {
    if (!r.have_baseline) {
      std::snprintf(line, sizeof(line), "| %s | — | %.1f | — | ⚠️ no baseline (%s) |\n",
                    r.bench.c_str(), r.fresh_tps, r.file.c_str());
      out << line;
      continue;
    }
    const double delta = (r.fresh_tps - r.base_tps) / r.base_tps;
    std::snprintf(line, sizeof(line), "| %s | %.1f | %.1f | %+.1f%% | %s |\n", r.bench.c_str(),
                  r.base_tps, r.fresh_tps, delta * 100.0, r.regressed ? "❌ regressed" : "✅");
    out << line;
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string baselines_dir;
  double max_regression = 0.20;
  std::vector<const char*> fresh_paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baselines") == 0 && i + 1 < argc) {
      baselines_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--max-regression") == 0 && i + 1 < argc) {
      max_regression = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      usage(0);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "bench_trend: unknown argument '%s'\n", argv[i]);
      usage(2);
    } else {
      fresh_paths.push_back(argv[i]);
    }
  }
  if (baselines_dir.empty() || fresh_paths.empty()) usage(2);
  if (max_regression <= 0.0 || max_regression >= 1.0) {
    std::fprintf(stderr, "bench_trend: --max-regression must be in (0, 1)\n");
    return 2;
  }

  std::vector<Row> rows;
  bool any_regressed = false;
  for (const char* path : fresh_paths) {
    Report fresh;
    if (!mmx::tools::load_report("bench_trend", path, fresh)) return 2;  // fresh must parse
    Row row;
    row.bench = fresh.bench;
    row.file = basename_of(path);
    row.fresh_tps = fresh.trials_per_s;

    const std::string base_path = baselines_dir + "/" + row.file;
    Report base;
    std::ifstream probe(base_path);
    if (probe && mmx::tools::load_report("bench_trend", base_path.c_str(), base)) {
      if (base.bench != fresh.bench) {
        std::fprintf(stderr, "bench_trend: '%s' is baseline for '%s', fresh is '%s'\n",
                     base_path.c_str(), base.bench.c_str(), fresh.bench.c_str());
        return 2;
      }
      if (base.trials_per_s <= 0.0) {
        std::fprintf(stderr, "bench_trend: baseline '%s' has no throughput\n",
                     base_path.c_str());
        return 2;
      }
      row.have_baseline = true;
      row.base_tps = base.trials_per_s;
      row.regressed = fresh.trials_per_s < base.trials_per_s * (1.0 - max_regression);
      any_regressed = any_regressed || row.regressed;
    } else {
      std::fprintf(stderr, "bench_trend: warning: no baseline '%s' for '%s' (not gated)\n",
                   base_path.c_str(), path);
    }
    rows.push_back(row);
  }

  const std::string table = markdown_table(rows, max_regression);
  std::fputs(table.c_str(), stdout);
  if (const char* summary = std::getenv("GITHUB_STEP_SUMMARY");
      summary != nullptr && *summary != '\0') {
    std::ofstream out(summary, std::ios::app);
    if (out) out << table << "\n";
  }
  for (const Row& r : rows) {
    if (r.regressed)
      std::printf("::error::%s regressed: %.1f -> %.1f trials/s (gate: -%d%%)\n",
                  r.bench.c_str(), r.base_tps, r.fresh_tps,
                  static_cast<int>(max_regression * 100));
  }
  return any_regressed ? 1 : 0;
}
