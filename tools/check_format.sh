#!/usr/bin/env bash
# Check (or fix, with --fix) clang-format compliance of the whole tree.
#
#   tools/check_format.sh          # report files that need formatting
#   tools/check_format.sh --fix    # rewrite them in place
#
# Exits 0 when everything is formatted, 1 when files need changes, and 0
# with a notice when no clang-format binary is available so machines
# without the tool are not blocked. CI installs clang-format and gates
# on this check (static-analysis job).
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

clang_format=""
for candidate in clang-format clang-format-18 clang-format-17 clang-format-16; do
  if command -v "$candidate" >/dev/null 2>&1; then
    clang_format="$candidate"
    break
  fi
done
if [ -z "$clang_format" ]; then
  echo "check_format: no clang-format binary found; skipping (CI gates on this)"
  exit 0
fi

mode="check"
if [ "${1:-}" = "--fix" ]; then
  mode="fix"
fi

# Tracked sources only: never formats build trees or third-party drops.
files=$(git ls-files '*.cpp' '*.hpp' '*.h' '*.cc' | grep -E '^(src|tests|bench|examples|tools)/')
if [ -z "$files" ]; then
  echo "check_format: no source files found"
  exit 0
fi

if [ "$mode" = "fix" ]; then
  echo "$files" | xargs "$clang_format" -i
  echo "check_format: formatted $(echo "$files" | wc -l) files"
  exit 0
fi

bad=0
for f in $files; do
  if ! "$clang_format" --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    bad=1
  fi
done
if [ "$bad" -eq 0 ]; then
  echo "check_format: all $(echo "$files" | wc -l) files formatted"
fi
exit "$bad"
