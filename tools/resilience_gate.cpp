// resilience_gate — CI's fault-storm delivery floor.
//
// Reads the JSON report from the fault arm of the scale bench
// (`bench_scale_churn --faults on`) and fails if the delivery ratio fell
// under the committed floor, or if the recovery machinery went quiet (a
// storm that injects faults but records no recoveries means the rejoin /
// reap paths silently stopped working — exactly the regression this gate
// exists to catch). Always prints the numbers — and appends a markdown
// summary to $GITHUB_STEP_SUMMARY when set — so the perf lane leaves an
// advisory comment whether or not the gate trips.
//
// usage: resilience_gate FAULTS.json [--min-delivery X] [--min-recoveries N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>

#include "report_json.hpp"

namespace {

void append_step_summary(const mmx::tools::Report& rep, double delivery, double recoveries,
                         double mean_recovery_rounds, double min_delivery, bool pass) {
  const char* path = std::getenv("GITHUB_STEP_SUMMARY");
  if (path == nullptr || *path == '\0') return;
  std::ofstream out(path, std::ios::app);
  if (!out) return;
  out << "### Resilience gate — " << rep.bench << (pass ? " ✅\n\n" : " ❌\n\n");
  out << "| delivery ratio | floor | recoveries | mean recovery [rounds] |\n";
  out << "|---|---|---|---|\n";
  char line[160];
  std::snprintf(line, sizeof(line), "| %.4f | %.4f | %.0f | %.1f |\n", delivery, min_delivery,
                recoveries, mean_recovery_rounds);
  out << line;
}

}  // namespace

int main(int argc, char** argv) {
  double min_delivery = 0.5;
  double min_recoveries = 1.0;
  const char* report_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-delivery") == 0 && i + 1 < argc) {
      min_delivery = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--min-recoveries") == 0 && i + 1 < argc) {
      min_recoveries = std::strtod(argv[++i], nullptr);
    } else if (report_path == nullptr) {
      report_path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: resilience_gate FAULTS.json [--min-delivery X] [--min-recoveries N]\n");
      return 2;
    }
  }
  if (report_path == nullptr) {
    std::fprintf(stderr,
                 "usage: resilience_gate FAULTS.json [--min-delivery X] [--min-recoveries N]\n");
    return 2;
  }

  mmx::tools::Report rep;
  if (!mmx::tools::load_report("resilience_gate", report_path, rep)) return 2;

  std::ifstream in(report_path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  double delivery = 0.0;
  double faults_on = 0.0;
  double recoveries = 0.0;
  double mean_recovery_rounds = 0.0;
  if (!mmx::tools::find_number(text, "delivery_ratio", delivery) ||
      !mmx::tools::find_number(text, "faults_on", faults_on) ||
      !mmx::tools::find_number(text, "fault_recoveries", recoveries) ||
      !mmx::tools::find_number(text, "mean_recovery_rounds", mean_recovery_rounds)) {
    std::fprintf(stderr, "resilience_gate: %s is not a fault-arm scale report\n", report_path);
    return 2;
  }
  if (faults_on != 1.0) {
    std::fprintf(stderr, "resilience_gate: %s was produced with faults off\n", report_path);
    return 2;
  }

  const bool delivery_ok = delivery >= min_delivery;
  const bool recovery_ok = recoveries >= min_recoveries;
  const bool pass = delivery_ok && recovery_ok;
  std::printf("resilience_gate: %s\n", rep.bench.c_str());
  std::printf("  delivery ratio: %.4f (floor: %.4f) -> %s\n", delivery, min_delivery,
              delivery_ok ? "PASS" : "FAIL");
  std::printf("  recoveries: %.0f (floor: %.0f), mean %.1f rounds -> %s\n", recoveries,
              min_recoveries, mean_recovery_rounds, recovery_ok ? "PASS" : "FAIL");
  append_step_summary(rep, delivery, recoveries, mean_recovery_rounds, min_delivery, pass);
  if (!delivery_ok)
    std::printf("::error::fault-storm delivery ratio %.4f fell under the %.4f floor\n",
                delivery, min_delivery);
  if (!recovery_ok)
    std::printf("::error::fault storm recorded %.0f recoveries (floor %.0f) — recovery paths "
                "may be dead\n", recoveries, min_recoveries);
  return pass ? 0 : 1;
}
