// resilience_gate — CI's robustness floors for the scale lanes.
//
// Default mode reads the JSON report from the fault arm of the scale
// bench (`bench_scale_churn --faults on`) and fails if the delivery
// ratio fell under the committed floor, or if the recovery machinery
// went quiet (a storm that injects faults but records no recoveries
// means the rejoin / reap paths silently stopped working — exactly the
// regression this gate exists to catch).
//
// --overload mode reads the oversubscription arm (`bench_scale_churn
// --overload on`) and enforces the graceful-degradation floors from
// docs/ROBUSTNESS.md: admitted-population delivery, at least one
// spectrum compaction (the fragmentation path must stay live), zero
// allocator invariant violations, and no grant below the configured
// rate floor.
//
// Always prints the numbers — and appends a markdown summary to
// $GITHUB_STEP_SUMMARY when set — so the perf lane leaves an advisory
// comment whether or not the gate trips.
//
// usage: resilience_gate FAULTS.json [--min-delivery X] [--min-recoveries N]
//        resilience_gate OVERLOAD.json --overload [--min-delivery X]
//                        [--min-compactions N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>

#include "report_json.hpp"

namespace {

constexpr char kUsage[] =
    "usage: resilience_gate FAULTS.json [--min-delivery X] [--min-recoveries N]\n"
    "       resilience_gate OVERLOAD.json --overload [--min-delivery X] "
    "[--min-compactions N]\n";

void append_step_summary(const mmx::tools::Report& rep, double delivery, double recoveries,
                         double mean_recovery_rounds, double min_delivery, bool pass) {
  const char* path = std::getenv("GITHUB_STEP_SUMMARY");
  if (path == nullptr || *path == '\0') return;
  std::ofstream out(path, std::ios::app);
  if (!out) return;
  out << "### Resilience gate — " << rep.bench << (pass ? " ✅\n\n" : " ❌\n\n");
  out << "| delivery ratio | floor | recoveries | mean recovery [rounds] |\n";
  out << "|---|---|---|---|\n";
  char line[160];
  std::snprintf(line, sizeof(line), "| %.4f | %.4f | %.0f | %.1f |\n", delivery, min_delivery,
                recoveries, mean_recovery_rounds);
  out << line;
}

void append_overload_summary(const mmx::tools::Report& rep, double delivery, double min_delivery,
                             double compactions, double violations, double min_rate,
                             double floor, bool pass) {
  const char* path = std::getenv("GITHUB_STEP_SUMMARY");
  if (path == nullptr || *path == '\0') return;
  std::ofstream out(path, std::ios::app);
  if (!out) return;
  out << "### Overload gate — " << rep.bench << (pass ? " ✅\n\n" : " ❌\n\n");
  out << "| delivery | floor | compactions | invariant violations | min rate [bps] | "
         "rate floor [bps] |\n";
  out << "|---|---|---|---|---|---|\n";
  char line[200];
  std::snprintf(line, sizeof(line), "| %.4f | %.4f | %.0f | %.0f | %.0f | %.0f |\n", delivery,
                min_delivery, compactions, violations, min_rate, floor);
  out << line;
}

int run_overload_gate(const char* report_path, double min_delivery, double min_compactions) {
  mmx::tools::Report rep;
  if (!mmx::tools::load_report("resilience_gate", report_path, rep)) return 2;

  std::ifstream in(report_path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  double delivery = 0.0;
  double overload_on = 0.0;
  double compactions = 0.0;
  double violations = 0.0;
  double admitted = 0.0;
  double min_rate = 0.0;
  double floor = 0.0;
  if (!mmx::tools::find_number(text, "delivery_ratio", delivery) ||
      !mmx::tools::find_number(text, "overload_on", overload_on) ||
      !mmx::tools::find_number(text, "ov_compactions", compactions) ||
      !mmx::tools::find_number(text, "ov_invariant_violations", violations) ||
      !mmx::tools::find_number(text, "ov_admitted", admitted) ||
      !mmx::tools::find_number(text, "ov_min_admitted_rate_bps", min_rate) ||
      !mmx::tools::find_number(text, "ov_rate_floor_bps", floor)) {
    std::fprintf(stderr, "resilience_gate: %s is not an overload-arm scale report\n",
                 report_path);
    return 2;
  }
  if (overload_on != 1.0) {
    std::fprintf(stderr, "resilience_gate: %s was produced with overload off\n", report_path);
    return 2;
  }

  const bool delivery_ok = delivery >= min_delivery;
  const bool compaction_ok = compactions >= min_compactions;
  const bool invariants_ok = violations == 0.0;
  const bool floor_ok = admitted > 0.0 && min_rate >= floor - 1.0;
  const bool pass = delivery_ok && compaction_ok && invariants_ok && floor_ok;
  std::printf("resilience_gate (overload): %s\n", rep.bench.c_str());
  std::printf("  delivery ratio: %.4f (floor: %.4f) -> %s\n", delivery, min_delivery,
              delivery_ok ? "PASS" : "FAIL");
  std::printf("  compactions: %.0f (floor: %.0f) -> %s\n", compactions, min_compactions,
              compaction_ok ? "PASS" : "FAIL");
  std::printf("  allocator invariant violations: %.0f -> %s\n", violations,
              invariants_ok ? "PASS" : "FAIL");
  std::printf("  min admitted rate: %.0f bps (configured floor: %.0f, admitted: %.0f) -> %s\n",
              min_rate, floor, admitted, floor_ok ? "PASS" : "FAIL");
  append_overload_summary(rep, delivery, min_delivery, compactions, violations, min_rate,
                          floor, pass);
  if (!delivery_ok)
    std::printf("::error::overload-lane delivery ratio %.4f fell under the %.4f floor\n",
                delivery, min_delivery);
  if (!compaction_ok)
    std::printf("::error::overload lane recorded %.0f compactions (floor %.0f) — the "
                "fragmentation path may be dead\n", compactions, min_compactions);
  if (!invariants_ok)
    std::printf("::error::allocator invariant violations: %.0f (must be 0)\n", violations);
  if (!floor_ok)
    std::printf("::error::min admitted rate %.0f bps under the configured %.0f bps floor\n",
                min_rate, floor);
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool overload_mode = false;
  double min_delivery = -1.0;  // resolved per mode below
  double min_recoveries = 1.0;
  double min_compactions = 1.0;
  const char* report_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--overload") == 0) {
      overload_mode = true;
    } else if (std::strcmp(argv[i], "--min-delivery") == 0 && i + 1 < argc) {
      min_delivery = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--min-recoveries") == 0 && i + 1 < argc) {
      min_recoveries = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--min-compactions") == 0 && i + 1 < argc) {
      min_compactions = std::strtod(argv[++i], nullptr);
    } else if (report_path == nullptr) {
      report_path = argv[i];
    } else {
      std::fputs(kUsage, stderr);
      return 2;
    }
  }
  if (report_path == nullptr) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (min_delivery < 0.0) min_delivery = overload_mode ? 0.80 : 0.5;
  if (overload_mode) return run_overload_gate(report_path, min_delivery, min_compactions);

  mmx::tools::Report rep;
  if (!mmx::tools::load_report("resilience_gate", report_path, rep)) return 2;

  std::ifstream in(report_path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  double delivery = 0.0;
  double faults_on = 0.0;
  double recoveries = 0.0;
  double mean_recovery_rounds = 0.0;
  if (!mmx::tools::find_number(text, "delivery_ratio", delivery) ||
      !mmx::tools::find_number(text, "faults_on", faults_on) ||
      !mmx::tools::find_number(text, "fault_recoveries", recoveries) ||
      !mmx::tools::find_number(text, "mean_recovery_rounds", mean_recovery_rounds)) {
    std::fprintf(stderr, "resilience_gate: %s is not a fault-arm scale report\n", report_path);
    return 2;
  }
  if (faults_on != 1.0) {
    std::fprintf(stderr, "resilience_gate: %s was produced with faults off\n", report_path);
    return 2;
  }

  const bool delivery_ok = delivery >= min_delivery;
  const bool recovery_ok = recoveries >= min_recoveries;
  const bool pass = delivery_ok && recovery_ok;
  std::printf("resilience_gate: %s\n", rep.bench.c_str());
  std::printf("  delivery ratio: %.4f (floor: %.4f) -> %s\n", delivery, min_delivery,
              delivery_ok ? "PASS" : "FAIL");
  std::printf("  recoveries: %.0f (floor: %.0f), mean %.1f rounds -> %s\n", recoveries,
              min_recoveries, mean_recovery_rounds, recovery_ok ? "PASS" : "FAIL");
  append_step_summary(rep, delivery, recoveries, mean_recovery_rounds, min_delivery, pass);
  if (!delivery_ok)
    std::printf("::error::fault-storm delivery ratio %.4f fell under the %.4f floor\n",
                delivery, min_delivery);
  if (!recovery_ok)
    std::printf("::error::fault storm recorded %.0f recoveries (floor %.0f) — recovery paths "
                "may be dead\n", recoveries, min_recoveries);
  return pass ? 0 : 1;
}
