// mmx_cli — command-line front end for quick what-if studies.
//
//   mmx_cli link <x> <y> <orient_deg> [--rate MBPS] [--blocker] [--room WxH]
//   mmx_cli map [--step M] [--blocker] [--room WxH]
//   mmx_cli range [--max M]
//   mmx_cli multinode <count> [--trials N]
//   mmx_cli scenario <nodes> [--duration S] [--walkers N]
//
// Every command prints a short, greppable report; exit code 0 on success.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mmx/baseline/fixed_beam.hpp"
#include "mmx/channel/blockage.hpp"
#include "mmx/common/units.hpp"
#include "mmx/core/scenario.hpp"
#include "mmx/sim/network_sim.hpp"
#include "mmx/sim/stats.hpp"

using namespace mmx;

namespace {

struct Args {
  std::vector<std::string> positional;
  double rate_mbps = 10.0;
  bool blocker = false;
  double room_w = 6.0;
  double room_h = 4.0;
  double step = 0.5;
  double max_range = 20.0;
  int trials = 50;
  double duration = 3.0;
  int walkers = 2;
};

bool parse(int argc, char** argv, Args& out) {
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next_value = [&](double& dst) {
      if (i + 1 >= argc) return false;
      dst = std::atof(argv[++i]);
      return true;
    };
    if (a == "--blocker") {
      out.blocker = true;
    } else if (a == "--rate") {
      if (!next_value(out.rate_mbps)) return false;
    } else if (a == "--step") {
      if (!next_value(out.step)) return false;
    } else if (a == "--max") {
      if (!next_value(out.max_range)) return false;
    } else if (a == "--duration") {
      if (!next_value(out.duration)) return false;
    } else if (a == "--trials") {
      double v;
      if (!next_value(v)) return false;
      out.trials = static_cast<int>(v);
    } else if (a == "--walkers") {
      double v;
      if (!next_value(v)) return false;
      out.walkers = static_cast<int>(v);
    } else if (a == "--room") {
      if (i + 1 >= argc) return false;
      const std::string spec = argv[++i];
      const auto xpos = spec.find('x');
      if (xpos == std::string::npos) return false;
      out.room_w = std::atof(spec.substr(0, xpos).c_str());
      out.room_h = std::atof(spec.substr(xpos + 1).c_str());
    } else if (!a.empty() && a[0] != '-') {
      out.positional.push_back(a);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

int cmd_link(const Args& args) {
  if (args.positional.size() < 3) {
    std::fprintf(stderr, "usage: mmx_cli link <x> <y> <orient_deg> [--rate MBPS] [--blocker]\n");
    return 2;
  }
  channel::Room room(args.room_w, args.room_h);
  const channel::Pose ap{{args.room_w - 0.3, args.room_h / 2.0}, kPi};
  const channel::Pose node{{std::atof(args.positional[0].c_str()),
                            std::atof(args.positional[1].c_str())},
                           deg_to_rad(std::atof(args.positional[2].c_str()))};
  if (args.blocker) channel::park_blocker_on_los(room, node.position, ap.position);
  channel::RayTracer tracer(room);
  antenna::MmxBeamPair beams;
  antenna::Dipole ap_ant;
  sim::LinkBudget budget;
  rf::SpdtSwitch spdt;
  const auto modes =
      baseline::compare_modes(tracer, node, beams, ap, ap_ant, 24.125e9, budget, spdt);
  std::printf("link: node (%.2f, %.2f) @ %.0f deg -> AP (%.2f, %.2f)%s\n", node.position.x,
              node.position.y, rad_to_deg(node.orientation_rad), ap.position.x, ap.position.y,
              args.blocker ? " [LoS blocked]" : "");
  std::printf("  OTAM:       SNR %6.1f dB   contrast %5.1f dB   joint BER %.2e\n",
              modes.with_otam.snr_db, modes.with_otam.contrast_db, modes.with_otam.joint_ber);
  std::printf("  fixed beam: SNR %6.1f dB   contrast %5.1f dB   joint BER %.2e\n",
              modes.without_otam.snr_db, modes.without_otam.contrast_db,
              modes.without_otam.joint_ber);
  return 0;
}

int cmd_map(const Args& args) {
  const channel::Pose ap{{args.room_w - 0.3, args.room_h / 2.0}, kPi};
  antenna::MmxBeamPair beams;
  antenna::Dipole ap_ant;
  sim::LinkBudget budget;
  rf::SpdtSwitch spdt;
  std::printf("OTAM SNR map [dB], room %.1fx%.1f, AP right-centre%s\n", args.room_w,
              args.room_h, args.blocker ? ", person on each LoS" : "");
  for (double y = args.step / 2.0; y < args.room_h; y += args.step) {
    for (double x = args.step / 2.0; x < args.room_w - 0.5; x += args.step) {
      channel::Room room(args.room_w, args.room_h);
      if (args.blocker) channel::park_blocker_on_los(room, {x, y}, ap.position);
      channel::RayTracer tracer(room);
      const channel::Pose node{{x, y}, 0.0};
      const auto g =
          channel::compute_beam_gains_avg(tracer, node, beams, ap, ap_ant, 24.125e9);
      std::printf("%6.1f", budget.evaluate_otam(g, spdt).snr_db);
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_range(const Args& args) {
  channel::Room hall(args.max_range + 2.0, 8.0);
  channel::RayTracer tracer(hall);
  const channel::Pose ap{{args.max_range + 1.0, 4.0}, kPi};
  antenna::MmxBeamPair beams;
  antenna::Dipole ap_ant;
  sim::LinkBudget budget;
  rf::SpdtSwitch spdt;
  std::puts("distance_m snr_facing_db snr_45deg_db");
  for (double d = 1.0; d <= args.max_range; d += 1.0) {
    const channel::Pose facing{{ap.position.x - d, 4.0}, 0.0};
    const channel::Pose away{{ap.position.x - d, 4.0}, deg_to_rad(45.0)};
    const auto gf = channel::compute_beam_gains(tracer, facing, beams, ap, ap_ant, 24.125e9);
    const auto ga = channel::compute_beam_gains(tracer, away, beams, ap, ap_ant, 24.125e9);
    std::printf("%10.0f %13.1f %12.1f\n", d, budget.evaluate_otam(gf, spdt).snr_db,
                budget.evaluate_otam(ga, spdt).snr_db);
  }
  return 0;
}

int cmd_multinode(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: mmx_cli multinode <count> [--trials N]\n");
    return 2;
  }
  const int k = std::atoi(args.positional[0].c_str());
  Rng rng(1);
  std::vector<double> all;
  for (int t = 0; t < args.trials; ++t) {
    sim::NetworkSimulator net(channel::Room(args.room_w, args.room_h),
                              channel::Pose{{args.room_w - 0.3, args.room_h / 2.0}, kPi});
    int placed = 0;
    int attempts = 0;
    while (placed < k && attempts < 50 * k) {
      ++attempts;
      const channel::Pose pose{{rng.uniform(0.4, args.room_w - 0.8),
                                rng.uniform(0.4, args.room_h - 0.4)},
                               deg_to_rad(rng.uniform(-60.0, 60.0))};
      if (net.add_node(pose, args.rate_mbps * 1e6)) ++placed;
    }
    for (const auto& [id, s] : net.sinr_all_db()) all.push_back(s);
  }
  std::printf("nodes=%d trials=%d mean_sinr=%.1f dB p10=%.1f p90=%.1f\n", k, args.trials,
              sim::mean(all), sim::percentile(all, 10.0), sim::percentile(all, 90.0));
  return 0;
}

int cmd_scenario(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: mmx_cli scenario <nodes> [--duration S] [--walkers N]\n");
    return 2;
  }
  const int k = std::atoi(args.positional[0].c_str());
  Rng rng(2);
  core::Network net(channel::Room(args.room_w, args.room_h),
                    channel::Pose{{args.room_w - 0.3, args.room_h / 2.0}, kPi});
  std::vector<core::ScenarioNode> nodes;
  for (int i = 0; i < k; ++i) {
    nodes.push_back({{{rng.uniform(0.4, args.room_w - 0.8),
                       rng.uniform(0.4, args.room_h - 0.4)},
                      deg_to_rad(rng.uniform(-45.0, 45.0))},
                     args.rate_mbps * 1e6, 0.05, 256});
  }
  core::ScenarioConfig cfg;
  cfg.duration_s = args.duration;
  cfg.walkers = static_cast<std::size_t>(args.walkers);
  const auto result = core::run_scenario(net, nodes, cfg);
  std::printf("scenario: %zu nodes joined (%zu denied), %zu events\n", result.nodes.size(),
              result.joins_denied, result.events_executed);
  for (const auto& n : result.nodes) {
    std::printf("  node %2u: sent %4zu delivered %5.1f%% inversions %4zu snr %5.1f dB "
                "goodput %6.0f kbps\n",
                n.id, n.frames_sent, 100.0 * n.delivery_ratio(), n.inversions, n.mean_snr_db,
                n.goodput_bps / 1e3);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: mmx_cli <link|map|range|multinode|scenario> [args] [flags]\n");
    return 2;
  }
  Args args;
  if (!parse(argc, argv, args)) return 2;
  const std::string cmd = argv[1];
  if (cmd == "link") return cmd_link(args);
  if (cmd == "map") return cmd_map(args);
  if (cmd == "range") return cmd_range(args);
  if (cmd == "multinode") return cmd_multinode(args);
  if (cmd == "scenario") return cmd_scenario(args);
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}
