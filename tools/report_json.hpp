// Key-scan reader for bench-harness JSON reports, shared by the CI perf
// tools (sweep_gate, bench_trend).
//
// The harness (bench/harness.cpp) writes the gated numeric keys —
// "bench", "trials", "threads", "wall_s", "trials_per_s" — before any
// free-form text ("meta", "obs"), so a first-occurrence key scan is
// sufficient and a general JSON parser is not. Anything else reading
// these files should keep that contract in mind.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace mmx::tools {

struct Report {
  std::string bench;
  long long trials = 0;
  long long threads = 0;
  double wall_s = 0.0;
  double trials_per_s = 0.0;
};

/// First occurrence of `"key":` followed by a number. False if absent.
inline bool find_number(const std::string& text, const char* key, double& out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  const char* start = text.c_str() + pos + needle.size();
  char* end = nullptr;
  out = std::strtod(start, &end);
  return end != start;
}

/// First occurrence of `"key": "` up to the closing quote.
inline bool find_string(const std::string& text, const char* key, std::string& out) {
  const std::string needle = std::string("\"") + key + "\": \"";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  const std::size_t begin = pos + needle.size();
  const std::size_t close = text.find('"', begin);
  if (close == std::string::npos) return false;
  out = text.substr(begin, close - begin);
  return true;
}

/// Load a harness report; complains on stderr (prefixed with `tool`) and
/// returns false when the file is missing or not a harness report.
inline bool load_report(const char* tool, const char* path, Report& r) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open '%s'\n", tool, path);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  double trials = 0.0;
  double threads = 0.0;
  if (!find_string(text, "bench", r.bench) || !find_number(text, "trials", trials) ||
      !find_number(text, "threads", threads) || !find_number(text, "wall_s", r.wall_s) ||
      !find_number(text, "trials_per_s", r.trials_per_s)) {
    std::fprintf(stderr, "%s: '%s' is not a bench-harness JSON report\n", tool, path);
    return false;
  }
  r.trials = static_cast<long long>(trials);
  r.threads = static_cast<long long>(threads);
  return true;
}

}  // namespace mmx::tools
