// mmx_lint — the repo's custom units/determinism checker.
//
// `units.hpp` and `rng.hpp` document the conventions every mmX numerical
// result depends on (dB vs linear, Hz everywhere, explicitly seeded
// randomness); this tool enforces them mechanically. It runs as a ctest
// test (`lint_mmx`) over the source tree and fails the suite on any
// violation.
//
// Rules
//   units-suffix   In public headers (src/*/include/**/*.hpp), every
//                  `double` field/parameter whose name contains a physical
//                  quantity stem (freq, power, bandwidth, gain, loss, snr,
//                  noise, ...) must end with a recognized unit suffix
//                  (_hz, _db, _dbm, _w, _rad, _lin, ...). Function names
//                  are exempt only when the declaration itself shows the
//                  call parentheses.
//   rng-discipline No std::rand/srand/time(nullptr)/std::random_device or
//                  raw <random> engine anywhere outside mmx/common/rng.hpp;
//                  all randomness flows through mmx::Rng so runs are
//                  reproducible.
//   no-float       No `float` in the DSP/PHY/RF hot paths (src/dsp, src/phy,
//                  src/rf): the BER/link-budget numbers are validated in
//                  double precision only.
//   db-arith       The 10^(x/10) / 10*log10(x) conversion arithmetic lives
//                  only in mmx/common/units.{hpp,cpp}; everyone else calls
//                  db_to_lin/lin_to_db and friends.
//   trig-per-sample In DSP kernel TUs (src/dsp/*.cpp), no std::sin/std::cos
//                  inside a loop: per-sample trig is exactly what the
//                  rotator-phasor fast path removed (docs/DSP_FASTPATH.md).
//                  Setup/design-time loops (window/FIR design, plan and
//                  phasor construction, periodic resyncs) carry a reasoned
//                  allow() suppression.
//
// Suppression: append `// mmx-lint: allow(<rule>) -- <reason>` to the
// offending line. A suppression without a reason is itself a violation.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  std::size_t line;
  std::string rule;
  std::string message;
};

struct SourceFile {
  fs::path path;            // absolute
  std::string rel;          // repo-relative, '/' separators
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;  // comments/strings blanked out
};

// ---------------------------------------------------------------------------
// Loading and comment/string stripping
// ---------------------------------------------------------------------------

// Blank out comments and string/char literals while preserving line/column
// positions, so rule regexes never fire on prose or examples in doc
// comments.
std::vector<std::string> strip_comments(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  bool in_block = false;
  for (const std::string& line : lines) {
    std::string s(line.size(), ' ');
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block = false;
          ++i;
        }
        continue;
      }
      char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block = true;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            ++i;
          } else if (line[i] == quote) {
            break;
          }
          ++i;
        }
        continue;
      }
      s[i] = c;
    }
    out.push_back(std::move(s));
  }
  return out;
}

bool load_file(const fs::path& root, const fs::path& p, SourceFile& out) {
  std::ifstream in(p);
  if (!in) return false;
  out.path = p;
  out.rel = fs::relative(p, root).generic_string();
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    out.raw_lines.push_back(line);
  }
  out.code_lines = strip_comments(out.raw_lines);
  return true;
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

// `// mmx-lint: allow(rule) -- reason` suppresses `rule` on that line.
// Returns true if the line carries a *valid* (reasoned) suppression.
bool line_allows(const std::string& raw_line, const std::string& rule,
                 std::vector<Violation>& out, const SourceFile& f, std::size_t lineno) {
  static const std::regex kAllow(R"(//\s*mmx-lint:\s*allow\(([a-z\-]+)\)\s*(--\s*(\S.*))?)");
  std::smatch m;
  if (!std::regex_search(raw_line, m, kAllow)) return false;
  if (m[1].str() != rule) return false;
  if (!m[3].matched) {
    out.push_back({f.rel, lineno, rule, "suppression without a reason ('-- <why>' required)"});
    return true;  // still suppress the underlying finding; the bad comment is the finding
  }
  return true;
}

// ---------------------------------------------------------------------------
// Rule: units-suffix
// ---------------------------------------------------------------------------

const std::set<std::string> kQuantityStems = {
    "freq", "frequency", "power",  "bandwidth", "gain", "loss",
    "snr",  "sinr",      "noise",  "atten",     "attenuation",
};

// Unit (or explicit-dimensionless) markers accepted as the final name
// component. `_lin`/`_norm`/`_ratio`/`_frac`/`_scale` mark quantities that
// are deliberately dimensionless but unambiguous about linear-vs-dB.
const std::set<std::string> kUnitSuffixes = {
    "hz", "khz", "mhz",  "ghz",  "db",   "dbm",  "dbi",   "dbc", "dbr",
    "w",  "mw",  "uw",   "nw",   "kw",   "rad",  "deg",   "lin", "norm",
    "frac", "ratio", "scale", "bps", "mbps", "m", "mm", "s", "ms", "us", "ns",
};

std::vector<std::string> split_components(std::string name) {
  while (!name.empty() && name.back() == '_') name.pop_back();  // member `_`
  std::vector<std::string> parts;
  std::stringstream ss(name);
  std::string part;
  while (std::getline(ss, part, '_'))
    if (!part.empty()) parts.push_back(part);
  return parts;
}

void check_units_suffix(const SourceFile& f, std::vector<Violation>& out) {
  static const std::regex kDouble(R"(\bdouble\s*[&*]?\s*([A-Za-z_]\w*))");
  for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
    const std::string& line = f.code_lines[i];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kDouble);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      if (name == "operator") continue;
      // A '(' right after the identifier means this is a function
      // declaration: the rule covers fields and parameters, not call names.
      std::size_t after = static_cast<std::size_t>(it->position(1)) + name.size();
      while (after < line.size() && std::isspace(static_cast<unsigned char>(line[after])))
        ++after;
      if (after < line.size() && line[after] == '(') continue;
      const std::vector<std::string> parts = split_components(name);
      if (parts.empty()) continue;
      const bool has_stem = std::any_of(parts.begin(), parts.end(), [](const std::string& p) {
        return kQuantityStems.count(p) > 0;
      });
      if (!has_stem) continue;
      if (kUnitSuffixes.count(parts.back())) continue;
      const std::size_t lineno = i + 1;
      if (line_allows(f.raw_lines[i], "units-suffix", out, f, lineno)) continue;
      out.push_back({f.rel, lineno, "units-suffix",
                     "'double " + name + "' holds a physical quantity but has no unit suffix "
                     "(_hz/_db/_dbm/_w/_rad/_lin/...)"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: rng-discipline
// ---------------------------------------------------------------------------

struct TokenRule {
  std::regex re;
  std::string what;
};

void check_rng(const SourceFile& f, std::vector<Violation>& out) {
  static const std::vector<TokenRule> kForbidden = {
      {std::regex(R"(\bstd\s*::\s*rand\b|\brand\s*\(\s*\))"), "std::rand()"},
      {std::regex(R"(\bsrand\s*\()"), "srand()"},
      {std::regex(R"(\btime\s*\(\s*(nullptr|NULL|0)\s*\))"), "time(nullptr) seeding"},
      {std::regex(R"(\brandom_device\b)"), "std::random_device"},
      {std::regex(R"(\bmt19937(_64)?\b)"), "raw std::mt19937 engine"},
      {std::regex(R"(\bdefault_random_engine\b)"), "std::default_random_engine"},
      {std::regex(R"(\bminstd_rand0?\b)"), "raw minstd engine"},
      {std::regex(R"(\branlux\w*\b)"), "raw ranlux engine"},
      {std::regex(R"(\bknuth_b\b)"), "raw knuth_b engine"},
  };
  // mmx::Rng's own implementation is the one sanctioned owner of an engine.
  if (f.rel == "src/common/include/mmx/common/rng.hpp") return;
  for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
    for (const TokenRule& rule : kForbidden) {
      if (!std::regex_search(f.code_lines[i], rule.re)) continue;
      const std::size_t lineno = i + 1;
      if (line_allows(f.raw_lines[i], "rng-discipline", out, f, lineno)) continue;
      out.push_back({f.rel, lineno, "rng-discipline",
                     rule.what + " breaks run-to-run determinism; draw from an explicitly "
                     "seeded mmx::Rng instead"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-float
// ---------------------------------------------------------------------------

void check_no_float(const SourceFile& f, std::vector<Violation>& out) {
  static const std::regex kFloat(R"(\bfloat\b)");
  for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
    if (!std::regex_search(f.code_lines[i], kFloat)) continue;
    const std::size_t lineno = i + 1;
    if (line_allows(f.raw_lines[i], "no-float", out, f, lineno)) continue;
    out.push_back({f.rel, lineno, "no-float",
                   "'float' in a DSP/PHY/RF hot path; mmX numerics are validated in double "
                   "precision only"});
  }
}

// ---------------------------------------------------------------------------
// Rule: db-arith
// ---------------------------------------------------------------------------

bool is_units_file(const std::string& rel) {
  return rel == "src/common/include/mmx/common/units.hpp" || rel == "src/common/units.cpp";
}

void check_db_arith(const SourceFile& f, std::vector<Violation>& out, bool strict_pow10) {
  // pow(10, x / 10) / pow(10, x / 20): a hand-rolled dB->linear conversion.
  static const std::regex kPowDb(R"(\bpow\s*\(\s*10(\.0*)?\s*,[^;]*\/\s*(10|20)(\.0*)?\b)");
  // Any pow(10, ...) inside src/ is treated as suspect even without the /10.
  static const std::regex kPowAny(R"(\bpow\s*\(\s*10(\.0*)?\s*,)");
  // 10*log10(x) / 20*log10(x): a hand-rolled linear->dB conversion.
  static const std::regex kLogDb(R"(\b(10|20)(\.0*)?\s*\*\s*(std\s*::\s*)?log10\s*\()");
  if (is_units_file(f.rel)) return;
  for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
    const std::string& line = f.code_lines[i];
    const bool hit = std::regex_search(line, kPowDb) || std::regex_search(line, kLogDb) ||
                     (strict_pow10 && std::regex_search(line, kPowAny));
    if (!hit) continue;
    const std::size_t lineno = i + 1;
    if (line_allows(f.raw_lines[i], "db-arith", out, f, lineno)) continue;
    out.push_back({f.rel, lineno, "db-arith",
                   "hand-rolled dB<->linear conversion; use mmx::lin_to_db/db_to_lin/"
                   "watt_to_dbm/dbm_to_watt from units.hpp"});
  }
}

// ---------------------------------------------------------------------------
// Rule: trig-per-sample
// ---------------------------------------------------------------------------

// Flag sin/cos calls that sit inside a loop of a DSP kernel TU. Loop
// extent is tracked with a brace-depth stack: a `for`/`while` header opens
// a frame at the depth of its body brace, and the frame pops when that
// brace closes. Braceless single-statement bodies end at the first `;`
// after the header's closing parenthesis. This is a heuristic over
// stripped source lines, not a parse — good enough to catch a
// transcendental sneaking back into a per-sample loop.
void check_trig_per_sample(const SourceFile& f, std::vector<Violation>& out) {
  static const std::regex kTrig(R"(\b(std\s*::\s*)?(sin|cos)\s*\()");
  static const std::regex kLoop(R"(\b(for|while)\s*\()");
  int depth = 0;
  std::vector<int> loop_depths;  // brace depth of each enclosing loop body
  bool in_header = false;        // inside a loop header's parentheses
  bool pending_body = false;     // header closed, body not yet begun
  int paren = 0;
  for (std::size_t i = 0; i < f.code_lines.size(); ++i) {
    const std::string& line = f.code_lines[i];
    std::smatch m;
    std::size_t header_pos = std::string::npos;
    if (std::regex_search(line, m, kLoop)) header_pos = static_cast<std::size_t>(m.position(0));
    const bool in_loop =
        !loop_depths.empty() || in_header || pending_body || header_pos != std::string::npos;
    if (in_loop && std::regex_search(line, kTrig)) {
      const std::size_t lineno = i + 1;
      if (!line_allows(f.raw_lines[i], "trig-per-sample", out, f, lineno))
        out.push_back({f.rel, lineno, "trig-per-sample",
                       "sin/cos in a loop of a DSP kernel TU; advance a unit phasor (one "
                       "complex multiply per sample, periodic resync) instead, or mark a "
                       "setup/design loop with a reasoned allow()"});
    }
    for (std::size_t j = 0; j < line.size(); ++j) {
      if (j == header_pos) {
        in_header = true;
        paren = 0;
      }
      const char c = line[j];
      if (in_header) {
        if (c == '(') ++paren;
        if (c == ')' && --paren == 0) {
          in_header = false;
          pending_body = true;
        }
        continue;
      }
      if (c == '{') {
        ++depth;
        if (pending_body) {
          loop_depths.push_back(depth);
          pending_body = false;
        }
      } else if (c == '}') {
        if (!loop_depths.empty() && loop_depths.back() == depth) loop_depths.pop_back();
        --depth;
      } else if (c == ';' && pending_body) {
        pending_body = false;  // braceless body ended
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

bool has_ext(const fs::path& p, std::initializer_list<const char*> exts) {
  const std::string e = p.extension().string();
  return std::any_of(exts.begin(), exts.end(), [&](const char* x) { return e == x; });
}

std::vector<fs::path> collect(const fs::path& dir,
                              std::initializer_list<const char*> exts) {
  std::vector<fs::path> files;
  if (!fs::exists(dir)) return files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && has_ext(entry.path(), exts))
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: mmx_lint <repo_root>\n";
    return 2;
  }
  const fs::path root = fs::absolute(argv[1]);
  if (!fs::exists(root / "src")) {
    std::cerr << "mmx_lint: " << root << " does not look like the mmX repo root (no src/)\n";
    return 2;
  }

  std::vector<Violation> violations;
  std::size_t files_scanned = 0;

  for (const char* top : {"src", "tests", "bench", "examples", "tools"}) {
    for (const fs::path& p : collect(root / top, {".hpp", ".cpp", ".h", ".cc"})) {
      SourceFile f;
      if (!load_file(root, p, f)) {
        violations.push_back({p.string(), 0, "io", "could not read file"});
        continue;
      }
      ++files_scanned;

      const bool in_src = starts_with(f.rel, "src/");
      const bool public_header =
          in_src && f.rel.find("/include/") != std::string::npos && has_ext(p, {".hpp", ".h"});
      const bool hot_path = starts_with(f.rel, "src/dsp/") ||
                            starts_with(f.rel, "src/phy/") || starts_with(f.rel, "src/rf/");

      check_rng(f, violations);
      check_db_arith(f, violations, /*strict_pow10=*/in_src);
      if (public_header) check_units_suffix(f, violations);
      if (hot_path) check_no_float(f, violations);
      if (starts_with(f.rel, "src/dsp/") && has_ext(p, {".cpp", ".cc"}))
        check_trig_per_sample(f, violations);
    }
  }

  std::sort(violations.begin(), violations.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  for (const Violation& v : violations) {
    std::cerr << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message << "\n";
  }
  std::cerr << "mmx_lint: " << files_scanned << " files scanned, " << violations.size()
            << " violation(s)\n";
  return violations.empty() ? 0 : 1;
}
